"""Selection of the PME parameters ``(alpha, r_max, K, p)`` (paper Table III).

For every configuration the paper chooses PME parameters "such that
execution time is minimized while keeping the PME relative error e_p
less than 10^-3" (Section V.C; the procedure itself is "beyond the
scope" of the paper).  This module implements a concrete such
procedure:

1. error control — for a candidate cutoff ``r_max``, the splitting
   parameter ``xi`` is set by bisection so the real-space kernel at the
   cutoff is below the error budget; the mesh must then resolve the
   reciprocal kernel both in *truncation* (the splitting function
   ``chi`` at the Nyquist wavenumber below budget) and in *spline
   interpolation* (``xi h`` below an order-dependent bound calibrated
   against measured ``e_p``),
2. cost minimization — among admissible ``(xi, r_max, K)`` triples the
   one with the smallest predicted time under the Section IV.D
   performance model is selected.

The resulting parameters are validated by
:func:`repro.pme.accuracy.pme_relative_error` in the test suite.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError, ConvergenceError
from ..geometry.box import Box
from ..perfmodel import PMECostModel, WESTMERE_EP
from ..rpy import beenakker
from ..units import FluidParams, REDUCED
from .operator import PMEParams

__all__ = ["tune_parameters", "estimate_errors", "fft_friendly_size",
           "spline_resolution_bound"]

# Measured B-spline interpolation error of the reciprocal sum as a
# function of xi*h (h = L/K mesh spacing), tabulated at the reference
# xi*a = 2 on random suspensions against the dense Ewald matrix.  The
# error collapses onto e = T_p(xi*h) * (xi*a/2)^3 across mesh sizes —
# the (xi a)^3 factor comes from the O(a^3 xi^3) amplitude of the
# degree-3 RPY kernel terms.  See tests/test_pme_tuning.py for the
# re-calibration check.
_SPLINE_ERR_TABLE: dict[int, tuple[tuple[float, float], ...]] = {
    4: ((0.10, 2.7e-4), (0.15, 1.5e-3), (0.20, 5.6e-3), (0.30, 3.0e-2),
        (0.45, 2.2e-1), (0.60, 7.8e-1), (0.80, 2.4e0)),
    6: ((0.10, 1.1e-6), (0.15, 1.5e-5), (0.20, 1.1e-4), (0.30, 1.8e-3),
        (0.45, 4.3e-2), (0.60, 3.7e-1), (0.80, 2.0e0)),
    8: ((0.10, 3.1e-9), (0.15, 2.2e-7), (0.20, 3.0e-6), (0.30, 1.7e-4),
        (0.45, 1.5e-2), (0.60, 2.4e-1), (0.80, 2.2e0)),
}

#: Reference ``xi * a`` at which the table above was measured.
_SPLINE_REF_XIA = 2.0


def _spline_table(p: int) -> tuple[np.ndarray, np.ndarray]:
    if p not in _SPLINE_ERR_TABLE:
        raise ConfigurationError(
            f"no spline calibration for order p={p}; use p in "
            f"{sorted(_SPLINE_ERR_TABLE)}")
    table = _SPLINE_ERR_TABLE[p]
    xih = np.log(np.array([t[0] for t in table]))
    err = np.log(np.array([t[1] for t in table]))
    return xih, err


def spline_error_estimate(p: int, xih: float, xia: float) -> float:
    """Estimated relative spline error at mesh resolution ``xi*h``.

    Log-log interpolation of the calibration table with linear
    extrapolation at the ends, scaled by ``(xi a / 2)^3``.
    """
    lx, le = _spline_table(p)
    x = math.log(max(xih, 1e-6))
    if x <= lx[0]:
        slope = (le[1] - le[0]) / (lx[1] - lx[0])
        y = le[0] + slope * (x - lx[0])
    elif x >= lx[-1]:
        slope = (le[-1] - le[-2]) / (lx[-1] - lx[-2])
        y = le[-1] + slope * (x - lx[-1])
    else:
        y = float(np.interp(x, lx, le))
    return math.exp(y) * (xia / _SPLINE_REF_XIA) ** 3


def spline_resolution_bound(p: int, budget: float, xia: float) -> float:
    """Largest ``xi * h`` with estimated spline error <= ``budget``.

    Inverts :func:`spline_error_estimate` (monotone in ``xi h``); the
    result is clamped to ``[0.02, 1.0]``.
    """
    if budget <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    lx, le = _spline_table(p)
    target = math.log(budget / max((xia / _SPLINE_REF_XIA) ** 3, 1e-300))
    if target >= le[-1]:
        slope = (le[-1] - le[-2]) / (lx[-1] - lx[-2])
        x = lx[-1] + (target - le[-1]) / slope
    elif target <= le[0]:
        slope = (le[1] - le[0]) / (lx[1] - lx[0])
        x = lx[0] + (target - le[0]) / slope
    else:
        x = float(np.interp(target, le, lx))
    return float(np.clip(math.exp(x), 0.02, 1.0))


def fft_friendly_size(minimum: int) -> int:
    """Smallest even 5-smooth integer (2^a 3^b 5^c) >= ``minimum``."""
    k = max(2, int(minimum))
    while True:
        if k % 2 == 0:
            m = k
            for f in (2, 3, 5):
                while m % f == 0:
                    m //= f
            if m == 1:
                return k
        k += 1


def _real_kernel_magnitude(xi: float, r: float, radius: float) -> float:
    """``|f| + |g|`` of the real-space kernel at distance ``r``."""
    f, g = beenakker.real_space_coefficients(np.array([r]), xi, radius)
    return float(abs(f[0]) + abs(g[0]))


def _xi_for_cutoff(r_max: float, budget: float, radius: float) -> float:
    """Smallest ``xi`` whose real-space kernel at ``r_max`` is <= budget.

    The kernel decreases monotonically in ``xi`` at fixed ``r`` (more
    of the sum is pushed to reciprocal space); bisection on
    ``log xi``.
    """
    lo, hi = 1e-3 / r_max, 50.0 / r_max
    if _real_kernel_magnitude(hi, r_max, radius) > budget:
        raise ConvergenceError(
            f"cannot reach real-space budget {budget} at r_max={r_max}")
    if _real_kernel_magnitude(lo, r_max, radius) <= budget:
        return lo
    for _ in range(80):
        mid = math.sqrt(lo * hi)
        if _real_kernel_magnitude(mid, r_max, radius) <= budget:
            hi = mid
        else:
            lo = mid
    return hi


def _chi(k: float, xi: float) -> float:
    """Beenakker splitting function ``chi_alpha(k)`` (reciprocal decay).

    ``chi = (1 + k^2/(4 xi^2) + k^4/(8 xi^4)) exp(-k^2/(4 xi^2))``.
    """
    x = (k / (2.0 * xi)) ** 2
    return (1.0 + x + 2.0 * x * x) * math.exp(-x)


def _k_for_truncation(xi: float, budget: float) -> float:
    """Smallest wavenumber with ``chi(k) <= budget`` (bisection)."""
    lo, hi = 1e-6 * xi, 200.0 * xi
    if _chi(hi, xi) > budget:
        raise ConvergenceError(f"cannot reach reciprocal budget {budget}")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if _chi(mid, xi) <= budget:
            hi = mid
        else:
            lo = mid
    return hi


def _shell_factor(n: int, box: Box, r_max: float, xi: float) -> float:
    """Error amplification from the population of the truncated shell.

    The relative error contributed by real-space truncation is roughly
    the kernel magnitude at the cutoff times the square root of the
    number of neighbors in the decay shell ``[r_max, r_max + 1/xi]``
    (incoherent sum of the truncated pair contributions).
    """
    density = n / box.volume
    n_shell = density * 4.0 * math.pi * r_max ** 2 / xi
    return math.sqrt(max(1.0, n_shell))


def estimate_errors(params: PMEParams, box: Box,
                    fluid: FluidParams = REDUCED, n: int | None = None
                    ) -> dict[str, float]:
    """A-priori error estimates of a PME parameter set.

    Returns the three components the tuner controls: the real-space
    kernel magnitude at the cutoff (``real``), the splitting function at
    the mesh Nyquist (``recip_truncation``), and the spline-resolution
    digits implied by the calibration table (``spline`` as an error,
    ``10^-digits``).
    """
    h = box.length / params.K
    k_ny = math.pi * params.K / box.length
    real = _real_kernel_magnitude(params.xi, params.r_max, fluid.radius)
    if n is not None:
        real *= _shell_factor(n, box, params.r_max, params.xi)
    trunc = _chi(k_ny, params.xi)
    if params.p in _SPLINE_ERR_TABLE:
        spline = spline_error_estimate(params.p, params.xi * h,
                                       params.xi * fluid.radius)
    else:
        spline = float("nan")
    return {"real": real, "recip_truncation": trunc, "spline": spline}


def tune_parameters(n: int, box: Box, target_ep: float = 1e-3, p: int = 6,
                    fluid: FluidParams = REDUCED,
                    model: PMECostModel | None = None,
                    r_max_candidates=None, safety: float = 4.0,
                    interpolation: str = "bspline",
                    kernel: str = "rpy") -> PMEParams:
    """Choose ``(xi, r_max, K, p)`` minimizing predicted time at a target ``e_p``.

    Parameters
    ----------
    n:
        Number of particles.
    box:
        Periodic simulation box.
    target_ep:
        Target PME relative error (paper keeps ``e_p < 1e-3``).
    p:
        B-spline order (4, 6 or 8).
    fluid:
        Fluid parameters (radius enters the kernels).
    model:
        Performance model used for the cost ranking; defaults to the
        paper's Westmere-EP machine (the ranking, not the absolute
        times, is what matters).
    r_max_candidates:
        Cutoff distances to consider; default spans ``2.5a .. 6a``
        capped at ``L/2``.
    safety:
        Error-budget divisor applied to ``target_ep`` for each
        component (real, truncation, spline).
    interpolation, kernel:
        Forwarded into the returned :class:`PMEParams`.  The spline
        calibration table was measured for the SPME/RPY combination;
        for Lagrangian interpolation the same ``K`` yields a larger
        (but monotonically related) error, so treat tuned Lagrange
        parameters as a starting point and verify with
        :func:`repro.pme.accuracy.pme_relative_error`.

    Returns
    -------
    PMEParams
        The admissible parameter set with the lowest predicted cost.
    """
    if not (0 < target_ep < 1):
        raise ConfigurationError(f"target_ep must be in (0, 1), got {target_ep}")
    if model is None:
        model = PMECostModel(WESTMERE_EP)
    a = fluid.radius
    half_l = box.length / 2
    if r_max_candidates is None:
        base = np.array([2.5, 3.0, 3.5, 4.0, 5.0, 6.0]) * a
        r_max_candidates = sorted({min(float(r), half_l) for r in base})
    budget = target_ep / safety

    best: PMEParams | None = None
    best_cost = math.inf
    for r_max in r_max_candidates:
        if r_max <= 2 * a * 1.01:
            continue
        try:
            # fixed point: the shell amplification depends on xi, which
            # depends on the (amplification-reduced) kernel budget
            xi = _xi_for_cutoff(r_max, budget, a)
            for _ in range(3):
                xi = _xi_for_cutoff(
                    r_max, budget / _shell_factor(n, box, r_max, xi), a)
            k_needed = _k_for_truncation(xi, budget)
        except ConvergenceError:
            continue
        k_trunc = int(math.ceil(k_needed * box.length / math.pi))
        xih_max = spline_resolution_bound(p, budget, xi * a)
        k_spline = int(math.ceil(xi * box.length / xih_max))
        K = fft_friendly_size(max(k_trunc, k_spline, p, 8))
        pair_density = n * (4.0 / 3.0) * math.pi * r_max ** 3 / box.volume
        cost = (model.t_reciprocal(n, K, p)
                + model.t_real(n, pair_density))
        if cost < best_cost:
            best_cost = cost
            best = PMEParams(xi=xi, r_max=float(r_max), K=K, p=p,
                             interpolation=interpolation, kernel=kernel)
    if best is None:
        raise ConvergenceError(
            f"no admissible PME parameters for n={n}, L={box.length}, "
            f"target_ep={target_ep}")
    return best
