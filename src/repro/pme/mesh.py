"""The PME mesh: a ``K x K x K`` grid over the periodic box.

Centralizes the wavevector bookkeeping for the half-spectrum
(real-to-complex) FFT layout the implementation uses throughout: arrays
over reciprocal space have shape ``(K, K, K//2 + 1)`` and the missing
modes are implied by conjugate symmetry (paper Section IV.B.3 — using
r2c transforms "halves the memory and bandwidth requirements").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..geometry.box import Box

__all__ = ["Mesh"]


@dataclass(frozen=True)
class Mesh:
    """Regular cubic mesh of dimension ``K`` over a periodic box.

    Parameters
    ----------
    box:
        The periodic simulation box of edge ``L``.
    K:
        Mesh points per dimension (``K >= 2``).  Powers of two and
        other FFT-friendly sizes are fastest but any ``K`` works.
    """

    box: Box
    K: int

    def __post_init__(self) -> None:
        if self.K < 2:
            raise ConfigurationError(f"mesh dimension K must be >= 2, got {self.K}")

    @property
    def spacing(self) -> float:
        """Mesh spacing ``h = L / K``."""
        return self.box.length / self.K

    @property
    def shape(self) -> tuple[int, int, int]:
        """Real-space array shape ``(K, K, K)``."""
        return (self.K, self.K, self.K)

    @property
    def rshape(self) -> tuple[int, int, int]:
        """Half-spectrum array shape ``(K, K, K//2 + 1)`` (rfftn layout)."""
        return (self.K, self.K, self.K // 2 + 1)

    @property
    def n_points(self) -> int:
        """Total number of mesh points ``K^3``."""
        return self.K ** 3

    @property
    def nyquist(self) -> float:
        """Largest resolved wavenumber ``pi K / L``."""
        return math.pi * self.K / self.box.length

    def wavenumbers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Signed physical wavenumbers along each axis of the rfftn layout.

        Returns 1-D arrays ``(kx, ky, kz)`` of lengths
        ``(K, K, K//2 + 1)``: ``kx[m] = 2 pi s(m) / L`` with ``s(m)`` the
        signed FFT frequency, and ``kz`` covering only the non-negative
        half spectrum.
        """
        two_pi_over_l = 2.0 * math.pi / self.box.length
        full = np.fft.fftfreq(self.K, d=1.0 / self.K) * two_pi_over_l
        half = np.fft.rfftfreq(self.K, d=1.0 / self.K) * two_pi_over_l
        return full, full, half

    def k_grids(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Broadcastable 3-D wavevector component grids (rfftn layout)."""
        kx, ky, kz = self.wavenumbers()
        return (kx[:, None, None], ky[None, :, None], kz[None, None, :])

    def k2_grid(self) -> np.ndarray:
        """``|k|^2`` on the half-spectrum grid, shape :attr:`rshape`."""
        gx, gy, gz = self.k_grids()
        return gx * gx + gy * gy + gz * gz

    def hermitian_weight(self) -> np.ndarray:
        """Multiplicity of each stored mode in the full spectrum.

        In the rfftn layout the planes ``kz = 0`` and (for even ``K``)
        ``kz = K/2`` represent themselves only (weight 1); every other
        stored mode also stands for its conjugate (weight 2).  Needed
        when summing spectral quantities, e.g. in error estimates.
        """
        w = np.full(self.rshape, 2.0)
        w[:, :, 0] = 1.0
        if self.K % 2 == 0:
            w[:, :, -1] = 1.0
        return w
