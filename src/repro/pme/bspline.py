"""Cardinal B-splines and Euler exponential-spline coefficients.

Smooth PME (Essmann et al., paper reference [7]) interpolates the
complex exponentials ``exp(2 pi i k u / K)`` with cardinal B-splines
``M_p`` of order ``p`` (piecewise polynomials of degree ``p - 1``,
support ``(0, p)``)::

    exp(2 pi i k u / K)  ~  b(k) * sum_m M_p(u - m) exp(2 pi i k m / K)

with the Euler spline coefficient::

    b(k) = exp(2 pi i (p-1) k / K) / sum_{j=0}^{p-2} M_p(j+1) exp(2 pi i k j / K)

The PME influence function is multiplied by ``|b1 b2 b3|^2`` — one
factor of ``b`` from spreading (the adjoint of interpolation) and one
from interpolation.

For *odd* ``p`` the denominator vanishes at ``k = K/2``; following
standard practice that mode is dropped (coefficient set to zero).  The
paper (Table III) uses even orders ``p = 4, 6``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["bspline_value", "bspline_weights", "euler_spline_coefficients",
           "euler_spline_modulus"]


def bspline_value(x, p: int) -> np.ndarray:
    """Evaluate the cardinal B-spline ``M_p`` pointwise (reference code).

    ``M_2(x) = 1 - |x - 1|`` on ``[0, 2]`` and
    ``M_p(x) = (x M_{p-1}(x) + (p - x) M_{p-1}(x - 1)) / (p - 1)``.
    Zero outside ``(0, p)``.  Vectorized but recursive — use
    :func:`bspline_weights` in hot paths.
    """
    if p < 2:
        raise ConfigurationError(f"B-spline order must be >= 2, got {p}")
    x = np.asarray(x, dtype=np.float64)
    if p == 2:
        return np.where((x > 0) & (x < 2), 1.0 - np.abs(x - 1.0), 0.0)
    return (x * bspline_value(x, p - 1)
            + (p - x) * bspline_value(x - 1.0, p - 1)) / (p - 1)


def bspline_weights(frac: np.ndarray, p: int) -> np.ndarray:
    """All ``p`` spline weights for fractional mesh offsets, vectorized.

    For a particle with scaled coordinate ``u`` let ``w = u - floor(u)``
    be the fractional part.  The weight of mesh point ``floor(u) - j``
    is ``M_p(w + j)``; this returns those values for ``j = 0 .. p-1``.

    Parameters
    ----------
    frac:
        Fractional parts ``w`` in ``[0, 1)``, shape ``(n,)``.
    p:
        Spline order ``>= 2``.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, p)``; ``out[:, j] = M_p(w + j)``.  Rows sum to 1
        exactly (partition of unity), a property the tests check.
    """
    if p < 2:
        raise ConfigurationError(f"B-spline order must be >= 2, got {p}")
    w = np.asarray(frac, dtype=np.float64)
    if w.ndim != 1:
        raise ConfigurationError(f"frac must be 1-D, got shape {w.shape}")
    n = w.shape[0]
    out = np.zeros((n, p))
    # order 2: M_2(w) = w, M_2(w + 1) = 1 - w
    out[:, 0] = w
    out[:, 1] = 1.0 - w
    for q in range(3, p + 1):
        # upgrade in place from order q-1 to order q, highest j first so
        # out[:, j-1] still holds the order-(q-1) value
        inv = 1.0 / (q - 1)
        for j in range(q - 1, -1, -1):
            x = w + j
            prev_here = out[:, j]
            prev_left = out[:, j - 1] if j > 0 else 0.0
            out[:, j] = inv * (x * prev_here + (q - x) * prev_left)
    return out


def euler_spline_coefficients(K: int, p: int) -> np.ndarray:
    """Euler exponential-spline coefficients ``b(k)`` for all ``K`` modes.

    Returns a complex array of length ``K`` indexed by the FFT mode
    number ``k = 0 .. K-1``.  For odd ``p`` the ill-defined ``k = K/2``
    mode is set to zero.
    """
    if K < p:
        raise ConfigurationError(
            f"mesh dimension K={K} must be at least the spline order p={p}")
    k = np.arange(K)
    j = np.arange(p - 1)
    mp_at_integers = bspline_value(j + 1.0, p)            # M_p(1..p-1)
    denom = (mp_at_integers[None, :]
             * np.exp(2j * np.pi * np.outer(k, j) / K)).sum(axis=1)
    numer = np.exp(2j * np.pi * (p - 1) * k / K)
    b = np.zeros(K, dtype=np.complex128)
    ok = np.abs(denom) > 1e-10
    b[ok] = numer[ok] / denom[ok]
    return b


def euler_spline_modulus(K: int, p: int) -> np.ndarray:
    """``|b(k)|^2`` for all ``K`` modes (the factor entering the influence
    function once per dimension, squared because it appears in both
    spreading and interpolation)."""
    b = euler_spline_coefficients(K, p)
    return (b * b.conj()).real
