"""The short-range (real-space) Ewald operator as a block-sparse matrix.

With the Ewald parameter chosen so the real-space series is negligible
beyond a cutoff ``r_max``, the operator ``M_real`` becomes a sparse
matrix with a 3x3 RPY tensor block per interacting pair (paper
Section IV.C).  It is built in linear time from a Verlet cell list and
stored in BCSR; because Algorithm 2 applies it to blocks of vectors,
the multi-vector SpMV path matters and two engines are provided:

* ``"bcsr"``  -- the from-scratch :class:`~repro.sparse.bcsr.BlockCSR`
  product (vectorized NumPy, faithful to the paper's kernel structure),
* ``"scipy"`` -- a compiled ``scipy.sparse`` CSR product (default).

All values are in units of ``mu0 = 1/(6 pi eta a)``; the composed
:class:`~repro.pme.operator.PMEOperator` applies the physical prefactor.
The diagonal blocks carry the Ewald self term ``M^(0)_alpha``.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from ..geometry.box import Box
from ..lint.contracts import force_block_arg, positions_arg
from ..neighbor.pairs import find_pairs
from ..rpy import beenakker
from ..sparse.bcsr import BlockCSR
from ..units import FluidParams, REDUCED
from ..utils.validation import as_force_block, as_positions

__all__ = ["RealSpaceOperator"]


class RealSpaceOperator:
    """Sparse real-space Ewald mobility ``M_real + M_self`` (in ``mu0`` units).

    Parameters
    ----------
    positions:
        Particle positions, shape ``(n, 3)``.
    box:
        Periodic box; ``r_max`` must not exceed ``L/2`` (minimum image).
    xi:
        Ewald splitting parameter.
    r_max:
        Real-space cutoff distance.
    fluid:
        Fluid parameters (radius enters the tensors).
    neighbor_backend:
        Pair-search backend (``"cells"``, ``"kdtree"``, ``"brute"``).
    overlap_corrected:
        Apply the positive-definite overlap regularization to pairs
        closer than ``2a`` (default true).
    engine:
        ``"scipy"`` (compiled CSR SpMV, default) or ``"bcsr"``
        (from-scratch block SpMV).
    kernel:
        ``"rpy"`` (default) or ``"oseen"``.
    """

    @positions_arg()
    def __init__(self, positions, box: Box, xi: float, r_max: float,
                 fluid: FluidParams = REDUCED, neighbor_backend: str = "cells",
                 overlap_corrected: bool = True, engine: str = "scipy",
                 kernel: str = "rpy"):
        r = as_positions(positions)
        n = r.shape[0]
        if r_max <= 0:
            raise ConfigurationError(f"r_max must be positive, got {r_max}")
        if r_max > box.length / 2 + 1e-12:
            raise ConfigurationError(
                f"r_max={r_max} exceeds half the box length {box.length / 2}; "
                "the real-space sum would need explicit image shells")
        if engine not in ("scipy", "bcsr"):
            raise ConfigurationError(f"unknown engine {engine!r}")

        self.box = box
        self.fluid = fluid
        self.xi = float(xi)
        self.r_max = float(r_max)
        self.n = n
        self.engine = engine
        self.kernel = kernel

        with obs.span("pme.find_pairs", n=n, backend=neighbor_backend):
            i, j = find_pairs(r, box, r_max, backend=neighbor_backend)
        if i.size:
            rij, dist = box.distances(r, i, j)
            f, g = beenakker.real_space_coefficients(dist, xi, fluid.radius,
                                                     kernel=kernel)
            if overlap_corrected and kernel == "rpy":
                df, dg = beenakker.overlap_correction_coefficients(
                    dist, fluid.radius)
                f = f + df
                g = g + dg
            rhat = rij / dist[:, None]
            blocks = (f[:, None, None] * np.eye(3)
                      + g[:, None, None] * (rhat[:, :, None] * rhat[:, None, :]))
        else:
            blocks = np.empty((0, 3, 3))

        diag_scalar = beenakker.self_mobility_scalar(xi, fluid.radius,
                                                     kernel=kernel)
        diag = np.broadcast_to(diag_scalar * np.eye(3), (n, 3, 3)).copy()

        #: The block-sparse operator (always available for introspection).
        self.bcsr = BlockCSR.from_pairs(n, i, j, blocks, diag_blocks=diag)
        self._csr = self.bcsr.to_scipy() if engine == "scipy" else None
        #: Number of interacting pairs within ``r_max``.
        self.n_pairs = int(i.size)

    @force_block_arg()
    def apply(self, forces) -> np.ndarray:
        """``u_real = (M_real + M_self) f`` in ``mu0`` units.

        Accepts flat ``(3n,)`` vectors or ``(3n, s)`` blocks of vectors
        (the block path is the one Algorithm 2 exercises).
        """
        f, flat = as_force_block(forces, self.n)
        with obs.span("pme.real_spmv", engine=self.engine,
                      s=int(f.shape[1])):
            if self._csr is not None:
                out = self._csr @ f
            else:
                out = self.bcsr.matvec(f)
        return out[:, 0] if flat else out

    def apply_block(self, forces, context=None) -> np.ndarray:
        """Multi-RHS real-space product via BCSR SpMM.

        Unlike :meth:`apply` (which on the SciPy engine loops the RHS
        columns inside ``csr_matvecs``), this streams each 3x3 block
        once against all ``s`` lanes through
        :meth:`~repro.sparse.bcsr.BlockCSR.matmat` — the paper's
        Section IV.C block-of-vectors SpMV.  A parallel
        :class:`~repro.exec.ExecutionContext` chunks the product into
        block-row ranges across its workers (bit-identical to the
        serial product: row results are independent).
        """
        f, _ = as_force_block(forces, self.n)
        span_args = {} if context is None else context.span_args()
        with obs.span("pme.real_spmm", s=int(f.shape[1]), **span_args):
            return self.bcsr.matmat(f, context=context)

    @property
    def memory_bytes(self) -> int:
        """Bytes of the stored sparse operator."""
        if self._csr is not None:
            return (self._csr.data.nbytes + self._csr.indices.nbytes
                    + self._csr.indptr.nbytes)
        return self.bcsr.memory_bytes

    @property
    def nnz_blocks(self) -> int:
        """Number of stored 3x3 blocks (pairs both ways + diagonal)."""
        return self.bcsr.nnz_blocks
