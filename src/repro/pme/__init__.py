"""Particle-mesh Ewald (PME) for the RPY tensor — the paper's contribution.

The reciprocal-space Ewald sum is evaluated on a regular ``K^3`` mesh
with cardinal B-spline interpolation (smooth PME), 3D real-to-complex
FFTs, and a precomputed scalar influence function; the real-space sum
is a block-sparse matrix over short-range pairs.  The composed
:class:`~repro.pme.operator.PMEOperator` multiplies the periodic RPY
mobility matrix by force vectors in ``O(n log n)`` time and ``O(n)``
memory without ever forming the matrix (paper Sections III.A and IV).

Module layout mirrors the paper's six-step reformulation
(Section IV.A):

* :mod:`~repro.pme.bspline`   -- cardinal B-splines ``W_p`` and Euler
  exponential-spline coefficients ``b(k)``,
* :mod:`~repro.pme.mesh`      -- the ``K^3`` mesh and its wavevectors,
* :mod:`~repro.pme.spread`    -- step 1 (construct ``P``), step 2
  (spreading) and step 6 (interpolation) as sparse products,
* :mod:`~repro.pme.influence` -- step 4, the scalar influence function,
* :mod:`~repro.pme.realspace` -- the short-range BCSR operator,
* :mod:`~repro.pme.operator`  -- the composed matrix-free operator,
* :mod:`~repro.pme.tuning`    -- selection of ``(alpha, r_max, K, p)``
  for a target relative error ``e_p`` (Table III),
* :mod:`~repro.pme.accuracy`  -- measurement of ``e_p`` against a
  reference (Section V.B).
"""

from .bspline import bspline_weights, bspline_value, euler_spline_modulus
from .mesh import Mesh
from .spread import InterpolationMatrix, spread_on_the_fly, interpolate_on_the_fly
from .influence import InfluenceFunction
from .realspace import RealSpaceOperator
from .cache import MobilityCache
from .operator import PMEOperator, PMEParams
from .tuning import tune_parameters, estimate_errors
from .accuracy import pme_relative_error

__all__ = [
    "bspline_weights",
    "bspline_value",
    "euler_spline_modulus",
    "Mesh",
    "InterpolationMatrix",
    "spread_on_the_fly",
    "interpolate_on_the_fly",
    "InfluenceFunction",
    "RealSpaceOperator",
    "MobilityCache",
    "PMEOperator",
    "PMEParams",
    "tune_parameters",
    "estimate_errors",
    "pme_relative_error",
]
