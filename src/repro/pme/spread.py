"""Spreading and interpolation as sparse-matrix products (paper Section IV.A).

The key reformulation of the paper: the B-spline spreading of forces
onto the mesh is ``F = P^T f`` and the interpolation of mesh velocities
back to the particles is ``u = P U``, with ``P`` the ``n x K^3``
interpolation matrix of Eq. 7 (``p^3`` nonzeros per row).  Because the
Krylov method applies the same PME operator to many vectors, ``P`` is
precomputed once per mobility update and reused — the optimization
measured in Fig. 4.  On-the-fly variants that never store ``P`` are
provided for that comparison.

``P`` is stored as a ``scipy.sparse.csr_matrix``: as the paper notes,
row pointers are redundant (every row has exactly ``p^3`` nonzeros) but
CSR keeps the compiled SpMV available; the redundancy is one ``intp``
per particle.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import obs
from ..errors import ConfigurationError
from ..geometry.box import Box
from ..lint.contracts import positions_arg
from ..utils.validation import as_positions
from .bspline import bspline_weights

__all__ = ["InterpolationMatrix", "spread_on_the_fly", "interpolate_on_the_fly"]


def _weights_and_columns(positions, box: Box, K: int, p: int,
                         kind: str = "bspline"
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Per-particle interpolation weights and flattened mesh indices.

    Returns ``(data, cols)`` with shapes ``(n, p^3)``: row ``i`` holds
    the ``p^3`` spreading weights of particle ``i`` and the flat
    (row-major) indices of the mesh points they address.

    ``kind`` selects cardinal B-splines (smooth PME, default) or
    Lagrange polynomials (the original PME of Darden et al.; see
    :mod:`repro.pme.lagrange`).
    """
    if p < 2:
        raise ConfigurationError(f"interpolation order must be >= 2, got {p}")
    if K < p:
        raise ConfigurationError(
            f"mesh dimension K={K} must be at least the order p={p}")
    r = as_positions(positions)
    u = box.fractional(r, K)                     # (n, 3) in [0, K)
    base = np.floor(u).astype(np.intp)
    frac = u - base

    if kind == "bspline":
        w = [bspline_weights(frac[:, d], p) for d in range(3)]  # 3 x (n, p)
        j = np.arange(p, dtype=np.intp)
        idx = [np.mod(base[:, d][:, None] - j[None, :], K) for d in range(3)]
    elif kind == "lagrange":
        from .lagrange import lagrange_weights, lagrange_window_offsets
        w = [lagrange_weights(frac[:, d], p) for d in range(3)]
        j = lagrange_window_offsets(p)
        idx = [np.mod(base[:, d][:, None] + j[None, :], K) for d in range(3)]
    else:
        raise ConfigurationError(f"unknown interpolation kind {kind!r}")

    data = np.einsum("ia,ib,ic->iabc", w[0], w[1], w[2]).reshape(-1, p ** 3)
    cols = ((idx[0][:, :, None, None] * K + idx[1][:, None, :, None]) * K
            + idx[2][:, None, None, :]).reshape(-1, p ** 3)
    return data, cols


class InterpolationMatrix:
    """Precomputed interpolation matrix ``P`` for one particle configuration.

    Parameters
    ----------
    positions:
        Particle positions, shape ``(n, 3)``.
    box:
        Periodic box.
    K:
        Mesh dimension.
    p:
        B-spline order.

    kind:
        ``"bspline"`` (smooth PME, default) or ``"lagrange"`` (original
        PME interpolation).

    Notes
    -----
    Construction is step 1 of the paper's six-step reciprocal-space
    pipeline; :meth:`spread` is step 2 and :meth:`interpolate` step 6.
    """

    @positions_arg()
    def __init__(self, positions, box: Box, K: int, p: int,
                 kind: str = "bspline"):
        with obs.span("pme.build_p", K=int(K), p=int(p), kind=kind):
            data, cols = _weights_and_columns(positions, box, K, p,
                                              kind=kind)
            n = data.shape[0]
            self.n = n
            self.K = int(K)
            self.p = int(p)
            self.kind = kind
            #: Per-particle spreading weights and flat mesh columns,
            #: shape ``(n, p^3)`` — the tables behind the CSR arrays
            #: (shared memory, not copies).  The colored execution
            #: engine (:class:`repro.parallel.engine.ColoredPMEEngine`)
            #: reuses them so parallel spreading recomputes nothing.
            self.weights = data
            self.columns = cols
            indptr = np.arange(0, n * p ** 3 + 1, p ** 3, dtype=np.intp)
            #: The sparse ``n x K^3`` matrix (CSR).
            self.matrix = sp.csr_matrix(
                (data.ravel(), cols.ravel(), indptr), shape=(n, K ** 3))
            self._transpose = self.matrix.T.tocsr()
        obs.set_gauge("pme_p_nnz", self.matrix.nnz)

    def spread(self, values: np.ndarray) -> np.ndarray:
        """Spread per-particle values onto the mesh: ``P^T values``.

        Parameters
        ----------
        values:
            Shape ``(n,)`` or ``(n, s)`` — one force component for each
            particle (and optionally ``s`` simultaneous vectors).

        Returns
        -------
        Mesh array of shape ``(K^3,)`` or ``(K^3, s)``.
        """
        return self._transpose @ values

    def interpolate(self, mesh_values: np.ndarray) -> np.ndarray:
        """Interpolate mesh values at the particle locations: ``P mesh``."""
        return self.matrix @ mesh_values

    def spread_batch(self, values: np.ndarray,
                     out: np.ndarray | None = None,
                     chunk: int = 16384) -> np.ndarray:
        """Spread a lane block to *batch-first* mesh layout.

        Parameters
        ----------
        values:
            Shape ``(n, B)`` — ``B`` lanes (components x vectors) of
            per-particle values.
        out:
            Optional preallocated ``(B, K^3)`` output (the batched
            pipeline reuses one across applications).

        Returns
        -------
        ``(B, K^3)`` array: lane ``b`` is the C-contiguous mesh field
        ``P^T values[:, b]``, ready for a contiguous in-place FFT.

        Notes
        -----
        The sparse product naturally produces ``(K^3, B)`` (lane-last);
        the batched FFTs want lane-*first*.  Transposing the ~``8 B
        K^3``-byte intermediate in one strided pass thrashes the TLB,
        so the bridge runs in row chunks that fit in cache.
        """
        gm = self._transpose @ values
        k3, b = gm.shape
        if out is None:
            out = np.empty((b, k3))
        for lo in range(0, k3, chunk):
            hi = min(lo + chunk, k3)
            out[:, lo:hi] = gm[lo:hi].T
        return out

    def interpolate_batch(self, mesh_values: np.ndarray,
                          out: np.ndarray | None = None) -> np.ndarray:
        """Interpolate a batch-first mesh block back to the particles.

        Parameters
        ----------
        mesh_values:
            Shape ``(B, K^3)`` — one C-contiguous mesh field per lane.
        out:
            Optional preallocated ``(B, n)`` output.

        Returns
        -------
        ``(B, n)`` array with ``out[b] = P mesh_values[b]``.

        Notes
        -----
        SciPy's CSR multi-vector product walks the operand columns one
        at a time, so handing it ``mesh_values.T`` would first pay a
        full transposed copy for nothing; one compiled SpMV per lane on
        the already-contiguous rows is faster.
        """
        b = mesh_values.shape[0]
        if out is None:
            out = np.empty((b, self.n))
        for lane in range(b):
            out[lane] = self.matrix @ mesh_values[lane]
        return out

    @property
    def memory_bytes(self) -> int:
        """Bytes held by ``P`` (values + column indices + row pointers).

        The paper's model charges ``12 p^3 n`` bytes for ``P`` (8-byte
        values + 4-byte column indices); SciPy uses 8-byte indices so
        the actual figure is reported here.
        """
        m = self.matrix
        return m.data.nbytes + m.indices.nbytes + m.indptr.nbytes


def spread_on_the_fly(positions, box: Box, K: int, p: int,
                      values: np.ndarray, chunk: int = 65536,
                      kind: str = "bspline") -> np.ndarray:
    """Spread without storing ``P`` (recomputes weights every call).

    This is the baseline of the Fig. 4 comparison: lower memory traffic
    per application but the ``O(p^3 n)`` weight computation is repeated
    for every vector.  Processes particles in chunks to bound the
    temporary memory.

    Parameters and return as :meth:`InterpolationMatrix.spread`.
    """
    values = np.asarray(values, dtype=np.float64)
    flat = values.ndim == 1
    vals = values[:, None] if flat else values
    n, s = vals.shape
    out = np.zeros((K ** 3, s))
    r = as_positions(positions, n)
    with obs.span("pme.spread_otf", n=n, s=s):
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            data, cols = _weights_and_columns(r[lo:hi], box, K, p, kind=kind)
            # scatter-add: multiple particles hit the same mesh points
            contrib = data[:, :, None] * vals[lo:hi, None, :]
            np.add.at(out, cols.ravel(),
                      contrib.reshape(-1, s))
    return out[:, 0] if flat else out


def interpolate_on_the_fly(positions, box: Box, K: int, p: int,
                           mesh_values: np.ndarray, chunk: int = 65536,
                           kind: str = "bspline") -> np.ndarray:
    """Interpolate without storing ``P`` (counterpart of
    :func:`spread_on_the_fly`)."""
    mesh_values = np.asarray(mesh_values, dtype=np.float64)
    flat = mesh_values.ndim == 1
    mv = mesh_values[:, None] if flat else mesh_values
    r = as_positions(positions)
    n = r.shape[0]
    out = np.empty((n, mv.shape[1]))
    with obs.span("pme.interpolate_otf", n=n, s=int(mv.shape[1])):
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            data, cols = _weights_and_columns(r[lo:hi], box, K, p, kind=kind)
            out[lo:hi] = np.einsum("ie,ies->is", data, mv[cols],
                                   optimize=True)
    return out[:, 0] if flat else out
