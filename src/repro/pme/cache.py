"""Reusable PME state across mobility rebuilds (Algorithm 2, line 4).

Algorithm 2 constructs a fresh PME operator every ``lambda_RPY`` steps;
within a block the operator (interpolation matrix ``P``, BCSR matrix,
influence function) already persists and is applied to all the block's
vectors.  What *was* wasted before this cache existed is the work that
does not depend on the particle configuration at all and was still
redone at every rebuild:

* the **influence function** — ``reciprocal_scalar`` over the half
  spectrum plus the ``|b|^2`` deconvolution, a function of
  ``(box, K, p, xi, a)`` only (paper Section IV.B.4 notes it is built
  once per simulation);
* the **mesh** description;
* the **batched-pipeline workspaces** — the ``(3s, K, K, K/2+1)``
  complex spectrum, the ``(3s, K^3)`` batch-first mesh block and the
  ``(3s, n)`` interpolation output used by
  :meth:`~repro.pme.operator.PMEOperator.apply_block`, several dozen MB
  at production sizes that would otherwise be reallocated (and page-
  faulted in) every ``lambda_RPY`` steps.

A single :class:`MobilityCache` instance is owned by the integrator
(:class:`~repro.core.integrators.MatrixFreeBD`) and threaded into every
operator it builds; hit/miss counters make the reuse observable.
Position-*dependent* state (``P``, the BCSR matrix) is deliberately not
cached — it must be rebuilt when the configuration changes.

**Thread safety.** Since the serve layer shares one cache-backed
operator across a thread pool, lookups (get-or-build plus the counter
updates) are serialized by an internal lock: a rebuild racing an apply
gets exactly one built entry and exact hit/miss tallies.  The lock
covers the *maps*, not the returned objects — workspace arrays are
shared scratch, so concurrent ``apply_block`` calls against one cache
must still be serialized externally (the batcher holds a per-operator
lock for exactly this reason).
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from ..geometry.box import Box
from .influence import InfluenceFunction
from .mesh import Mesh

__all__ = ["MobilityCache"]


class MobilityCache:
    """Keyed stores for position-independent PME state.

    All entries are keyed on the physical parameters that determine
    them, so one cache instance serves a whole simulation even if the
    PME parameters are re-tuned mid-run (each parameter set gets its
    own entry).
    """

    def __init__(self) -> None:
        self._meshes: dict[tuple, Mesh] = {}
        self._influences: dict[tuple, InfluenceFunction] = {}
        self._workspaces: dict[tuple, dict[str, np.ndarray]] = {}
        self._lock = threading.Lock()
        #: Number of cache lookups answered from the store.
        self.hits = 0
        #: Number of lookups that had to build a fresh entry.
        self.misses = 0

    def mesh(self, box: Box, K: int) -> Mesh:
        """The ``K^3`` mesh for ``box`` (built once per ``(L, K)``)."""
        key = (float(box.length), int(K))
        with self._lock:
            mesh = self._meshes.get(key)
            if mesh is None:
                self.misses += 1
                mesh = Mesh(box, K)
                self._meshes[key] = mesh
            else:
                self.hits += 1
            return mesh

    def influence(self, mesh: Mesh, xi: float, p: int, radius: float,
                  interpolation: str, kernel: str) -> InfluenceFunction:
        """The influence function for the given physical parameters."""
        key = (float(mesh.box.length), mesh.K, float(xi), int(p),
               float(radius), interpolation, kernel)
        with self._lock:
            influence = self._influences.get(key)
            if influence is None:
                self.misses += 1
                influence = InfluenceFunction(mesh, xi, p, radius,
                                              interpolation=interpolation,
                                              kernel=kernel)
                self._influences[key] = influence
            else:
                self.hits += 1
            return influence

    def workspace(self, K: int, lanes: int, n: int
                  ) -> dict[str, np.ndarray]:
        """Preallocated batched-pipeline arrays for ``lanes = 3 s``.

        Returns a dict with keys ``"mesh"`` (``(lanes, K^3)`` float64),
        ``"spec"`` (``(lanes, K, K, K//2 + 1)`` complex128) and
        ``"particle"`` (``(lanes, n)`` float64).  Contents are
        scratch — callers overwrite them fully, and concurrent applies
        sharing one cache must serialize around the whole apply (see
        the module docstring).
        """
        key = (int(K), int(lanes), int(n))
        with self._lock:
            ws = self._workspaces.get(key)
            if ws is None:
                self.misses += 1
                ws = {
                    "mesh": np.empty((lanes, K ** 3)),
                    "spec": np.empty((lanes, K, K, K // 2 + 1),
                                     dtype=np.complex128),
                    "particle": np.empty((lanes, n)),
                }
                self._workspaces[key] = ws
            else:
                self.hits += 1
            return ws

    def memory_bytes(self) -> int:
        """Bytes currently held by cached arrays (workspaces +
        influence scalars/wavevectors + mesh grids)."""
        with self._lock:
            total = 0
            for ws in self._workspaces.values():
                total += sum(a.nbytes for a in ws.values())
            for infl in self._influences.values():
                total += infl.memory_bytes
                total += sum(h.nbytes for h in infl._khat)
            return total

    def stats(self) -> dict[str, Any]:
        """Hit/miss counters and entry counts (for tests and logs)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "meshes": len(self._meshes),
            "influences": len(self._influences),
            "workspaces": len(self._workspaces),
            "memory_bytes": self.memory_bytes(),
        }
