"""The composed matrix-free PME mobility operator (paper Algorithm 2, line 4).

``PMEOperator`` is the software object the paper calls "the PME
operator": built once per mobility update from a particle
configuration, then applied to many force vectors::

    u = PME(f) = mu0 * ( M_real f  +  M_recip f  +  M_self f )

* the real-space term is a BCSR SpMV (:mod:`repro.pme.realspace`),
* the reciprocal-space term is the six-step mesh pipeline of
  Section IV.A: spread (``P^T f``), forward r2c FFT, influence
  function, inverse FFT, interpolate (``P U``),
* the self term is carried on the diagonal blocks of the real-space
  matrix.

Each phase is timed into :class:`~repro.utils.timing.PhaseTimer` under
the names used by Fig. 5 (``spread``, ``fft``, ``influence``, ``ifft``,
``interpolate``, ``real``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.fft as sfft
from scipy.sparse.linalg import LinearOperator

from .. import obs
from ..errors import ConfigurationError
from ..geometry.box import Box
from ..lint.contracts import force_block_arg, positions_arg
from ..units import FluidParams, REDUCED
from ..utils.params import keyword_only
from ..utils.timing import PhaseTimer
from ..utils.validation import as_force_block, as_positions
from .cache import MobilityCache
from .influence import InfluenceFunction
from .mesh import Mesh
from .realspace import RealSpaceOperator
from .spread import InterpolationMatrix, interpolate_on_the_fly, spread_on_the_fly

__all__ = ["PMEParams", "PMEOperator"]


def _rfftn_into(src: np.ndarray, dst: np.ndarray) -> None:
    """Forward r2c FFT into a preallocated spectrum (NumPy >= 2 has
    ``out=``; older versions pay one assignment copy)."""
    try:
        np.fft.rfftn(src, out=dst)
    except TypeError:  # pragma: no cover - numpy < 2
        dst[...] = np.fft.rfftn(src)


@keyword_only
@dataclass(frozen=True)
class PMEParams:
    """The PME parameter set of the paper's Table III.

    Parameters
    ----------
    xi:
        Ewald splitting parameter (the paper's ``alpha``).
    r_max:
        Real-space cutoff distance.
    K:
        FFT mesh dimension (mesh is ``K^3``).
    p:
        Cardinal B-spline order (paper uses 4 or 6).
    """

    xi: float
    r_max: float
    K: int
    p: int = 6
    #: Interpolation scheme: ``"bspline"`` (smooth PME, default) or
    #: ``"lagrange"`` (the original PME of paper reference [6]).
    interpolation: str = "bspline"
    #: Hydrodynamic kernel: ``"rpy"`` (the paper) or ``"oseen"`` (the
    #: Stokeslet kernel of the related-work Stokesian PME codes).
    kernel: str = "rpy"

    def __post_init__(self) -> None:
        if self.xi <= 0:
            raise ConfigurationError(f"xi must be positive, got {self.xi}")
        if self.r_max <= 0:
            raise ConfigurationError(f"r_max must be positive, got {self.r_max}")
        if self.K < 2:
            raise ConfigurationError(f"K must be >= 2, got {self.K}")
        if self.p < 2:
            raise ConfigurationError(f"p must be >= 2, got {self.p}")
        if self.K < self.p:
            raise ConfigurationError(
                f"K={self.K} must be at least the spline order p={self.p}")
        if self.interpolation not in ("bspline", "lagrange"):
            raise ConfigurationError(
                f"unknown interpolation {self.interpolation!r}")
        if self.kernel not in ("rpy", "oseen"):
            raise ConfigurationError(f"unknown kernel {self.kernel!r}")


class PMEOperator:
    """Matrix-free periodic RPY mobility operator for one configuration.

    Parameters
    ----------
    positions:
        Particle positions, shape ``(n, 3)``.
    box:
        Periodic simulation box.
    params:
        PME parameters ``(xi, r_max, K, p)``.
    fluid:
        Fluid parameters; the returned velocities include the physical
        ``mu0`` prefactor.
    neighbor_backend:
        Pair-search backend for the real-space matrix.
    store_p:
        Precompute and reuse the interpolation matrix ``P`` (paper
        Section IV.A; the Fig. 4 optimization).  When false, spreading
        and interpolation recompute spline weights on the fly.
    real_engine:
        ``"scipy"`` or ``"bcsr"`` SpMV engine for the real-space term.
    cache:
        Optional :class:`~repro.pme.cache.MobilityCache`: reuses the
        position-independent state (mesh, influence function, batched
        workspaces) across operator rebuilds — the mobility-reuse
        optimization of Algorithm 2, where a fresh operator is built
        every ``lambda_RPY`` steps.
    context:
        Optional :class:`~repro.exec.ExecutionContext`.  When attached
        (any backend, including an explicit ``serial`` one),
        :meth:`apply_block` runs the *colored* deterministic pipeline:
        spreading/interpolation execute per the Section IV.B.2
        independent-set schedule on the context's workers, the stacked
        FFTs use ``workers=``-parallel :mod:`scipy.fft`, and the
        real-space SpMM is chunked across workers — with results
        bit-identical across the ``serial``/``threads``/``processes``
        backends for a fixed kernel configuration.  ``None`` (default)
        uses the process default from :func:`repro.exec.default_context`
        (which is ``None`` — the legacy single-threaded path — unless
        the runtime config selects a parallel backend).

    Notes
    -----
    The operator is *frozen* to the positions it was built with —
    exactly like line 4 of Algorithm 2, which constructs the PME
    operator once per ``lambda_RPY`` steps.
    """

    @positions_arg()
    def __init__(self, positions, box: Box, params: PMEParams,
                 fluid: FluidParams = REDUCED, neighbor_backend: str = "cells",
                 store_p: bool = True, real_engine: str = "scipy",
                 cache: MobilityCache | None = None, context=None):
        from ..exec import default_context  # deferred: import cycle
        self.positions = as_positions(positions).copy()
        self.n = self.positions.shape[0]
        self.box = box
        self.params = params
        self.fluid = fluid
        self.cache = cache
        self.context = context if context is not None else default_context()
        self._exec_args = ({} if self.context is None
                           else self.context.span_args())
        self.mesh = (cache.mesh(box, params.K) if cache is not None
                     else Mesh(box, params.K))
        self.store_p = bool(store_p)
        self.timers = PhaseTimer(prefix="pme")
        #: Total number of operator applications (column counts included).
        self.n_applications = 0
        #: Batched-pipeline workspaces when no shared cache is set,
        #: keyed by lane count (allocated on first apply_block).
        self._workspaces: dict[tuple[int, int, int], dict] = {}

        with self.timers.phase("construct_p", **self._exec_args):
            self.interp = (InterpolationMatrix(self.positions, box,
                                               params.K, params.p,
                                               kind=params.interpolation)
                           if store_p else None)
        self.engine = None
        if self.context is not None and self.interp is not None:
            from ..parallel.engine import ColoredPMEEngine  # deferred cycle
            with self.timers.phase("construct_engine", **self._exec_args):
                self.engine = ColoredPMEEngine(
                    self.positions, box, params.K, params.p,
                    weights=self.interp.weights,
                    columns=self.interp.columns, context=self.context)
        if cache is not None:
            self.influence = cache.influence(
                self.mesh, params.xi, params.p, fluid.radius,
                interpolation=params.interpolation, kernel=params.kernel)
        else:
            self.influence = InfluenceFunction(
                self.mesh, params.xi, params.p, fluid.radius,
                interpolation=params.interpolation, kernel=params.kernel)
        with self.timers.phase("construct_real"):
            self.real = RealSpaceOperator(
                self.positions, box, params.xi, params.r_max, fluid=fluid,
                neighbor_backend=neighbor_backend, engine=real_engine,
                kernel=params.kernel)
        registry = obs.get_metrics()
        if registry is not None:
            self._record_build_metrics(registry)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """Operator shape ``(3n, 3n)``."""
        return (3 * self.n, 3 * self.n)

    @force_block_arg()
    def apply(self, forces) -> np.ndarray:
        """``u = M f`` for ``f`` of shape ``(3n,)`` or ``(3n, s)``.

        The result includes the physical prefactor ``mu0`` and all three
        Ewald contributions.
        """
        f, flat = as_force_block(forces, self.n)
        out = self.apply_real(f) + self.apply_reciprocal(f)
        out *= self.fluid.mobility0
        self.n_applications += f.shape[1]
        obs.inc("pme_applications_total", f.shape[1])
        return out[:, 0] if flat else out

    def __call__(self, forces) -> np.ndarray:
        from ..core.mobility import reject_call_shim  # deferred: import cycle
        reject_call_shim(type(self).__name__)

    def _workspace(self, lanes: int) -> dict:
        """Batched-pipeline scratch arrays for ``lanes = 3 s``."""
        if self.cache is not None:
            return self.cache.workspace(self.params.K, lanes, self.n)
        key = (self.params.K, lanes, self.n)
        ws = self._workspaces.get(key)
        if ws is None:
            K = self.params.K
            ws = {
                "mesh": np.empty((lanes, K ** 3)),
                "spec": np.empty((lanes, K, K, K // 2 + 1),
                                 dtype=np.complex128),
                "particle": np.empty((lanes, self.n)),
            }
            self._workspaces[key] = ws
        return ws

    @force_block_arg()
    def apply_block(self, forces) -> np.ndarray:
        """Batched ``U = M F`` for a block ``F`` of shape ``(3n, s)``.

        Produces the same operator action as ``s`` :meth:`apply` calls
        but amortizes the whole reciprocal pipeline across the block
        (paper Sections IV.A-IV.C):

        * one sparse spread product for all ``3s`` mesh components,
        * ``3s`` contiguous forward r2c FFTs into one stacked
          half-spectrum, and a *stacked* inverse transform (one batched
          c2c pass over the two full axes + one batched c2r pass over
          the half axis),
        * the influence function applied slab-fused over all vectors
          (``khat``/scalar grids read once per slab, not once per
          vector),
        * one BCSR SpMM for the real-space term (each 3x3 block
          streamed once against all ``s`` lanes).

        Workspaces come from the :class:`~repro.pme.cache.MobilityCache`
        when one is attached, so repeated block applications (block
        Lanczos iterations, consecutive mobility updates) allocate
        nothing.

        With an :class:`~repro.exec.ExecutionContext` attached, the
        spread/interpolate stages run through the colored
        :class:`~repro.parallel.engine.ColoredPMEEngine`, the stacked
        transforms use ``workers=``-parallel :mod:`scipy.fft`, and the
        real-space SpMM is chunked across the workers.  Without one
        (the default), this is the legacy single-threaded pipeline,
        byte-for-byte.
        """
        f, flat = as_force_block(forces, self.n)
        f = np.ascontiguousarray(f)
        n, s = self.n, f.shape[1]
        K = self.params.K
        lanes = 3 * s                       # lane b = component*s + vector
        ws = self._workspace(lanes)
        g, spec = ws["mesh"], ws["spec"]
        ctx, xargs = self.context, self._exec_args

        fm = f.reshape(n, 3, s).reshape(n, lanes)
        with self.timers.phase("spread", vectors=s, **xargs):
            if self.engine is not None:
                self.engine.spread_batch(fm, out=g)
            elif self.interp is not None:
                self.interp.spread_batch(fm, out=g)
            else:
                gm = spread_on_the_fly(self.positions, self.box, K,
                                       self.params.p, fm,
                                       kind=self.params.interpolation)
                for lo in range(0, K ** 3, 16384):
                    hi = min(lo + 16384, K ** 3)
                    g[:, lo:hi] = gm[lo:hi].T

        gl = g.reshape(lanes, K, K, K)
        with self.timers.phase("fft", vectors=s, **xargs):
            if ctx is not None:
                # one stacked r2c pass over all lanes; pocketfft splits
                # the independent line transforms across workers, which
                # is bitwise deterministic in the worker count
                spec[...] = sfft.rfftn(gl, axes=(1, 2, 3),
                                       workers=ctx.fft_workers)
            else:
                for b in range(lanes):
                    _rfftn_into(gl[b], spec[b])

        with self.timers.phase("influence", vectors=s, **xargs):
            self.influence.apply_batch(spec.reshape((3, s) + self.mesh.rshape))

        with self.timers.phase("ifft", vectors=s, **xargs):
            # decomposed inverse: batched c2c over the two full axes,
            # then one batched c2r transform on the half axis
            fft_workers = 1 if ctx is None else ctx.fft_workers
            tmp = sfft.ifftn(spec, axes=(1, 2), overwrite_x=True,
                             workers=fft_workers)
            u = sfft.irfft(tmp, n=K, axis=3, overwrite_x=True,
                           workers=fft_workers)

        with self.timers.phase("interpolate", vectors=s, **xargs):
            ub = u.reshape(lanes, K ** 3)
            if self.engine is not None:
                um = self.engine.interpolate_batch(ub, out=ws["particle"])
                recip = um.reshape(3, s, n).transpose(2, 0, 1).reshape(3 * n, s)
            elif self.interp is not None:
                um = self.interp.interpolate_batch(ub, out=ws["particle"])
                recip = um.reshape(3, s, n).transpose(2, 0, 1).reshape(3 * n, s)
            else:
                um = interpolate_on_the_fly(self.positions, self.box, K,
                                            self.params.p, ub.T,
                                            kind=self.params.interpolation)
                recip = um.reshape(n, 3, s).reshape(3 * n, s).copy()

        with self.timers.phase("real", vectors=s, **xargs):
            recip += self.real.apply_block(f, context=ctx)
        recip *= self.fluid.mobility0
        self.n_applications += s
        obs.inc("pme_applications_total", s)
        return recip[:, 0] if flat else recip

    def apply_real(self, forces) -> np.ndarray:
        """Real-space + self contribution in ``mu0`` units."""
        f, flat = as_force_block(forces, self.n)
        with self.timers.phase("real"):
            out = self.real.apply(f)
        return out[:, 0] if flat else out

    def apply_reciprocal(self, forces) -> np.ndarray:
        """Reciprocal-space contribution in ``mu0`` units.

        Runs the six-step mesh pipeline once per (vector, component):
        with ``s`` input vectors this is ``3s`` forward and ``3s``
        inverse 3-D real-to-complex FFTs (there is no FFT on blocks of
        vectors — the observation behind the paper's hybrid static
        partitioning, Section IV.E).
        """
        f, flat = as_force_block(forces, self.n)
        n, s = self.n, f.shape[1]
        K = self.params.K

        # spread all components and vectors in one sparse product
        fm = np.ascontiguousarray(f).reshape(n, 3 * s)
        with self.timers.phase("spread"):
            if self.interp is not None:
                mesh_f = self.interp.spread(fm)
            else:
                mesh_f = spread_on_the_fly(self.positions, self.box, K,
                                           self.params.p, fm,
                                           kind=self.params.interpolation)
        mesh_f = mesh_f.reshape(K, K, K, 3, s)

        mesh_u = np.empty_like(mesh_f)
        spec = np.empty((3,) + self.mesh.rshape, dtype=np.complex128)
        for v in range(s):
            with self.timers.phase("fft"):
                for theta in range(3):
                    spec[theta] = np.fft.rfftn(mesh_f[:, :, :, theta, v])
            with self.timers.phase("influence"):
                self.influence.apply(spec, out=spec)
            with self.timers.phase("ifft"):
                for theta in range(3):
                    mesh_u[:, :, :, theta, v] = np.fft.irfftn(
                        spec[theta], s=self.mesh.shape, axes=(0, 1, 2))

        with self.timers.phase("interpolate"):
            if self.interp is not None:
                um = self.interp.interpolate(mesh_u.reshape(K ** 3, 3 * s))
            else:
                um = interpolate_on_the_fly(self.positions, self.box, K,
                                            self.params.p,
                                            mesh_u.reshape(K ** 3, 3 * s),
                                            kind=self.params.interpolation)
        out = np.ascontiguousarray(um).reshape(3 * n, s)
        return out[:, 0] if flat else out

    # ------------------------------------------------------------------
    # adapters and accounting
    # ------------------------------------------------------------------

    def as_linear_operator(self) -> LinearOperator:
        """A :class:`scipy.sparse.linalg.LinearOperator` view of ``M``.

        Multi-vector products go through the batched
        :meth:`apply_block` fast path.
        """
        return LinearOperator(
            shape=self.shape, matvec=self.apply, matmat=self.apply_block,
            rmatvec=self.apply, dtype=np.float64)

    def to_dense(self) -> np.ndarray:
        """Densify by applying to the identity (tests / small n only)."""
        return self.apply(np.eye(3 * self.n))

    def memory_report(self) -> dict[str, int]:
        """Bytes held by each persistent component (Fig. 7a accounting)."""
        report = {
            "real_space_matrix": self.real.memory_bytes,
            "influence_function": self.influence.memory_bytes,
            "interpolation_matrix": (self.interp.memory_bytes
                                     if self.interp is not None else 0),
            # two K^3 x 3 float mesh arrays (forces and velocities)
            "mesh_arrays": 2 * 3 * 8 * self.params.K ** 3,
        }
        report["total"] = sum(report.values())
        return report

    def phase_breakdown(self) -> dict[str, float]:
        """Accumulated seconds per pipeline phase (Fig. 5 data)."""
        return self.timers.breakdown()

    def _record_build_metrics(self, registry) -> None:
        """Publish configuration + Section IV.D cost estimates.

        Gauges carry the *predicted* per-application byte/flop figures
        of the performance model so an exporter scrape (or ``repro
        profile``) can compare them against the measured phase times
        without re-deriving the model inputs.
        """
        from ..perfmodel.model import (
            fft_flops,
            influence_bytes,
            interpolation_bytes,
            pme_memory_bytes,
            spreading_bytes,
        )
        n, K, p = self.n, self.params.K, self.params.p
        registry.counter("pme_operators_built_total",
                         help="PME operator constructions "
                              "(one per mobility update)").inc()
        registry.gauge("pme_particles", help="particles n").set(n)
        registry.gauge("pme_mesh_dim", help="FFT mesh dimension K").set(K)
        registry.gauge("pme_interpolation_order",
                       help="interpolation order p").set(p)
        registry.gauge("pme_real_pairs",
                       help="pairs within r_max").set(self.real.n_pairs)
        bytes_gauge = registry.gauge
        predicted = {
            "spread": spreading_bytes(n, K, p),
            "influence": influence_bytes(K),
            "interpolate": interpolation_bytes(n, K, p),
        }
        for phase, nbytes in predicted.items():
            bytes_gauge("pme_predicted_bytes",
                        help="Eq. 10 per-application memory traffic",
                        phase=phase).set(nbytes)
        registry.gauge("pme_predicted_fft_flops",
                       help="Eq. 10 flops of the three (i)FFTs per "
                            "application").set(fft_flops(K))
        registry.gauge("pme_predicted_memory_bytes",
                       help="Eq. 11 persistent reciprocal-space "
                            "footprint").set(pme_memory_bytes(n, K, p))
        for component, nbytes in self.memory_report().items():
            registry.gauge("pme_memory_bytes",
                           help="measured bytes held per component",
                           component=component).set(nbytes)
