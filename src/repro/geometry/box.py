"""Cubic periodic simulation box.

The box is the geometric context shared by every operator in the
package: Ewald sums, PME meshes, cell lists and integrators all take a
:class:`Box`.  Only cubic boxes are supported, matching the paper
(``L x L x L``, Section III.A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..lint.contracts import positions_arg
from ..utils.pbc import fractional_coordinates, minimum_image, wrap_positions

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """A cubic ``L x L x L`` periodic simulation box.

    Parameters
    ----------
    length:
        Edge length ``L`` (must be positive).
    """

    length: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.length) and self.length > 0):
            raise ConfigurationError(
                f"box length must be positive and finite, got {self.length}")

    @property
    def volume(self) -> float:
        """Box volume ``L^3``."""
        return self.length ** 3

    @classmethod
    def for_volume_fraction(cls, n: int, volume_fraction: float,
                            radius: float = 1.0) -> "Box":
        """Box sized so ``n`` spheres of ``radius`` occupy ``volume_fraction``.

        The paper's suspensions are characterized by the volume fraction
        ``Phi = n * (4/3) pi a^3 / L^3`` (Section V.A); this solves for L.
        """
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        if not (0 < volume_fraction < 0.74):
            raise ConfigurationError(
                "volume_fraction must be in (0, 0.74) "
                f"(sphere close packing), got {volume_fraction}")
        particle_volume = (4.0 / 3.0) * math.pi * radius ** 3
        return cls((n * particle_volume / volume_fraction) ** (1.0 / 3.0))

    def volume_fraction(self, n: int, radius: float = 1.0) -> float:
        """Volume fraction of ``n`` spheres of ``radius`` in this box."""
        return n * (4.0 / 3.0) * math.pi * radius ** 3 / self.volume

    def minimum_image(self, dr: np.ndarray) -> np.ndarray:
        """Minimum-image displacement vectors (see :func:`repro.utils.pbc.minimum_image`)."""
        return minimum_image(dr, self.length)

    @positions_arg()
    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Wrap positions into ``[0, L)^3``."""
        return wrap_positions(positions, self.length)

    @positions_arg()
    def fractional(self, positions: np.ndarray, mesh_dim: int) -> np.ndarray:
        """Scaled fractional coordinates ``u = r K / L`` in ``[0, K)``."""
        return fractional_coordinates(positions, self.length, mesh_dim)

    @positions_arg()
    def distances(self, positions: np.ndarray, pairs_i: np.ndarray,
                  pairs_j: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Minimum-image separation vectors and distances for index pairs.

        Returns ``(rij, dist)`` where ``rij[k] = min_image(r[i_k] - r[j_k])``
        (the vector pointing from particle ``j`` to particle ``i``) and
        ``dist[k] = |rij[k]|``.
        """
        rij = self.minimum_image(positions[pairs_i] - positions[pairs_j])
        return rij, np.linalg.norm(rij, axis=1)
