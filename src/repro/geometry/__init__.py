"""Simulation-box geometry."""

from .box import Box

__all__ = ["Box"]
