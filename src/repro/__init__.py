"""repro — matrix-free hydrodynamic Brownian dynamics.

A complete, from-scratch Python implementation of

    Xing Liu and Edmond Chow,
    "Large-Scale Hydrodynamic Brownian Simulations on Multicore and
    Manycore Architectures", IPDPS 2014.

The package provides Brownian dynamics with Rotne-Prager-Yamakawa
hydrodynamic interactions in periodic boxes, in two flavors:

* the conventional **Ewald BD** algorithm (dense mobility matrix +
  Cholesky; paper Algorithm 1), and
* the paper's **matrix-free BD** algorithm (particle-mesh Ewald
  operator + block Krylov Brownian displacements; Algorithm 2), which
  scales to hundreds of thousands of particles in O(n log n) time and
  O(n) memory.

Quickstart::

    from repro import make_suspension, Simulation, diffusion_coefficient

    susp = make_suspension(n=1000, volume_fraction=0.2)
    sim = Simulation(susp, algorithm="matrix-free", dt=1e-3)
    traj, stats = sim.run(n_steps=200, record_interval=10)
    print(diffusion_coefficient(traj))

See DESIGN.md for the architecture and EXPERIMENTS.md for the
reproduction of every table and figure in the paper.
"""

from .units import FluidParams, REDUCED
from .geometry.box import Box
from .errors import (
    ReproError,
    ConfigurationError,
    ConvergenceError,
    NotPositiveDefiniteError,
    OverlapError,
    CheckpointCorruptionError,
)
from .resilience import (
    FailureKind,
    StepFailure,
    RecoveryPolicy,
    RecoveryLog,
)
from .systems import (
    Suspension,
    make_suspension,
    random_suspension,
    lattice_suspension,
    bead_spring_chain,
)
from .rpy import (
    mobility_matrix_free,
    ewald_mobility_matrix,
    EwaldSummation,
)
from .pme import (
    MobilityCache,
    PMEOperator,
    PMEParams,
    tune_parameters,
    pme_relative_error,
)
from .krylov import lanczos_sqrt, block_lanczos_sqrt
from .core import (
    MobilityOperator,
    DenseMobilityMatrix,
    CallableMobility,
    as_mobility,
    Simulation,
    Trajectory,
    EwaldBD,
    MatrixFreeBD,
    RepulsiveHarmonic,
    HarmonicBonds,
    ConstantForce,
    CompositeForce,
    save_trajectory,
    load_trajectory,
    Monitor,
    MSDMonitor,
    MinSeparationMonitor,
    EnergyMonitor,
    compose,
)
from .analysis import (
    diffusion_coefficient,
    mean_squared_displacement,
    short_time_self_diffusion,
    finite_size_correction,
    radial_distribution,
)
from .parallel import HybridScheduler
from .perfmodel import PMECostModel, WESTMERE_EP, XEON_PHI_KNC

__version__ = "1.0.0"

__all__ = [
    "FluidParams",
    "REDUCED",
    "Box",
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "NotPositiveDefiniteError",
    "OverlapError",
    "CheckpointCorruptionError",
    "FailureKind",
    "StepFailure",
    "RecoveryPolicy",
    "RecoveryLog",
    "Suspension",
    "make_suspension",
    "random_suspension",
    "lattice_suspension",
    "bead_spring_chain",
    "mobility_matrix_free",
    "ewald_mobility_matrix",
    "EwaldSummation",
    "MobilityCache",
    "PMEOperator",
    "PMEParams",
    "tune_parameters",
    "pme_relative_error",
    "lanczos_sqrt",
    "block_lanczos_sqrt",
    "MobilityOperator",
    "DenseMobilityMatrix",
    "CallableMobility",
    "as_mobility",
    "Simulation",
    "Trajectory",
    "EwaldBD",
    "MatrixFreeBD",
    "RepulsiveHarmonic",
    "HarmonicBonds",
    "ConstantForce",
    "CompositeForce",
    "save_trajectory",
    "load_trajectory",
    "Monitor",
    "MSDMonitor",
    "MinSeparationMonitor",
    "EnergyMonitor",
    "compose",
    "diffusion_coefficient",
    "mean_squared_displacement",
    "short_time_self_diffusion",
    "finite_size_correction",
    "radial_distribution",
    "HybridScheduler",
    "PMECostModel",
    "WESTMERE_EP",
    "XEON_PHI_KNC",
    "__version__",
]
