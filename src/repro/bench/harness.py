"""Benchmark harness utilities (scaling, caching, measuring, printing)."""

from __future__ import annotations

import math
import time
from functools import lru_cache
from typing import NamedTuple

from ..config import get_config
from ..systems.suspension import Suspension, make_suspension

__all__ = ["bench_scale", "cached_suspension", "measure_seconds",
           "TimingStats", "format_table", "print_table", "format_bytes"]


def bench_scale() -> str:
    """The active benchmark scale.

    ``"ci"`` (default) keeps every benchmark laptop-sized;
    ``"paper"`` runs the paper's full problem sizes (set the
    environment variable ``REPRO_BENCH_SCALE=paper``).
    """
    scale = get_config().bench_scale
    if scale not in ("ci", "paper"):
        raise ValueError(
            f"REPRO_BENCH_SCALE must be 'ci' or 'paper', got {scale!r}")
    return scale


@lru_cache(maxsize=32)
def cached_suspension(n: int, volume_fraction: float = 0.2,
                      seed: int = 0) -> Suspension:
    """A process-wide cached suspension (benchmarks reuse systems)."""
    return make_suspension(n, volume_fraction, seed=seed)


class TimingStats(NamedTuple):
    """Wall-clock statistics of a repeated measurement.

    ``best`` is the headline number (least-noise estimate, the value
    the old scalar ``measure_seconds`` returned); ``mean`` and ``std``
    quantify run-to-run spread for the machine-readable benchmark
    records.
    """

    best: float
    mean: float
    std: float
    repeats: int


def measure_seconds(fn, repeats: int = 1, warmup: int = 0) -> TimingStats:
    """Wall-clock statistics of ``fn()`` over ``repeats`` runs.

    Returns a :class:`TimingStats` ``(best, mean, std, repeats)``;
    ``std`` is the population standard deviation (0.0 for a single
    repeat).  Use ``.best`` where a single number is wanted.
    """
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    mean = sum(samples) / len(samples)
    var = sum((s - mean) ** 2 for s in samples) / len(samples)
    return TimingStats(best=min(samples), mean=mean, std=math.sqrt(var),
                       repeats=len(samples))


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (e.g. ``"1.5 GB"``)."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_table(title: str, headers: list[str],
                 rows: list[list]) -> str:
    """Render an aligned plain-text table (paper-style)."""
    str_rows = [[f"{c:.4g}" if isinstance(c, float) else str(c) for c in row]
                for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    sep = "  "
    lines = [title, "=" * len(title),
             sep.join(h.ljust(w) for h, w in zip(headers, widths)),
             sep.join("-" * w for w in widths)]
    lines += [sep.join(c.ljust(w) for c, w in zip(row, widths))
              for row in str_rows]
    return "\n".join(lines)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print :func:`format_table` output followed by a blank line."""
    print(format_table(title, headers, rows))
    print()
