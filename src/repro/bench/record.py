"""Machine-readable benchmark records (``BENCH_<name>.json``).

Every ``benchmarks/bench_*.py`` module writes one JSON record per run
through :func:`record_benchmark`, alongside the human-readable table it
prints.  The record carries the table verbatim (headers + rows) plus
environment context (scale, python, platform), so CI can archive the
files and regressions can be diffed across commits without re-parsing
stdout.

The output directory defaults to the current working directory and is
overridable with ``REPRO_BENCH_OUTDIR``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Iterable

from ..config import get_config
from .harness import TimingStats, bench_scale

__all__ = ["record_benchmark", "bench_output_dir"]

#: Version tag of the record layout (bump on incompatible change).
RECORD_SCHEMA = "repro-bench-record/1"


def bench_output_dir() -> Path:
    """Directory receiving ``BENCH_*.json`` (``REPRO_BENCH_OUTDIR``)."""
    return Path(get_config().bench_outdir)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of a table cell to a JSON value."""
    if isinstance(value, TimingStats):
        return {"best": value.best, "mean": value.mean, "std": value.std,
                "repeats": value.repeats}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):          # numpy scalar
        return value.item()
    return str(value)


def record_benchmark(name: str, headers: Iterable[str],
                     rows: Iterable[Iterable[Any]],
                     meta: dict[str, Any] | None = None,
                     out_dir: str | Path | None = None) -> Path:
    """Write ``BENCH_<name>.json`` and return the path written.

    Parameters
    ----------
    name:
        Record name; the file is ``BENCH_<name>.json``.
    headers, rows:
        The table as printed (rows may contain :class:`TimingStats`,
        numpy scalars, or strings — anything else is stringified).
    meta:
        Extra benchmark-specific context (parameters, notes).
    out_dir:
        Destination directory (default :func:`bench_output_dir`).
    """
    record = {
        "schema": RECORD_SCHEMA,
        "name": name,
        "scale": bench_scale(),
        "unix_time": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "headers": list(headers),
        "rows": [[_jsonable(c) for c in row] for row in rows],
    }
    if meta:
        record["meta"] = {k: _jsonable(v) for k, v in meta.items()}
    directory = Path(out_dir) if out_dir is not None else bench_output_dir()
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path
