"""Shared infrastructure for the paper-reproduction benchmarks.

Each module in the top-level ``benchmarks/`` directory regenerates one
table or figure of the paper (see DESIGN.md's experiment index).  The
helpers here keep those modules small: scale selection (CI-sized by
default, paper-sized via ``REPRO_BENCH_SCALE=paper``), cached system
construction, wall-clock measurement and aligned-table printing.
"""

from .harness import (
    TimingStats,
    bench_scale,
    cached_suspension,
    format_bytes,
    format_table,
    measure_seconds,
    print_table,
)
from .ledger import (
    Comparison,
    Delta,
    Timing,
    append_history,
    compare_records,
    extract_timings,
    load_history,
    machine_key,
)
from .record import bench_output_dir, record_benchmark

__all__ = [
    "TimingStats",
    "bench_scale",
    "bench_output_dir",
    "cached_suspension",
    "format_bytes",
    "format_table",
    "measure_seconds",
    "print_table",
    "record_benchmark",
    "Timing",
    "Delta",
    "Comparison",
    "machine_key",
    "extract_timings",
    "append_history",
    "load_history",
    "compare_records",
]
