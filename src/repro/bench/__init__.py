"""Shared infrastructure for the paper-reproduction benchmarks.

Each module in the top-level ``benchmarks/`` directory regenerates one
table or figure of the paper (see DESIGN.md's experiment index).  The
helpers here keep those modules small: scale selection (CI-sized by
default, paper-sized via ``REPRO_BENCH_SCALE=paper``), cached system
construction, wall-clock measurement and aligned-table printing.
"""

from .harness import (
    bench_scale,
    cached_suspension,
    format_bytes,
    format_table,
    measure_seconds,
    print_table,
)

__all__ = [
    "bench_scale",
    "cached_suspension",
    "format_bytes",
    "format_table",
    "measure_seconds",
    "print_table",
]
