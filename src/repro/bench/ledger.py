"""Performance-regression ledger for the benchmark records.

Two workflows over the machine-readable ``BENCH_<name>.json`` records
(:mod:`repro.bench.record`):

* ``repro bench record`` — :func:`append_history` folds each record
  into an append-only JSONL *history* file keyed by machine identity
  (architecture + python + benchmark scale), so one ledger can
  accumulate runs from heterogeneous CI runners without mixing their
  timings;
* ``repro bench compare`` — :func:`compare_records` diffs a fresh run
  against a committed baseline record with **noise-aware** thresholds:
  a timing regresses only when

  .. code-block:: text

      current.best > baseline.best * (1 + rel_tol)
                     + sigma * max(baseline.std, current.std)

  i.e. the relative budget (default +50%) is widened by ``sigma``
  (default 3) standard deviations of whichever side measured noisier
  — the ``TimingStats.std`` spread recorded by
  :func:`~repro.bench.harness.measure_seconds`.  Old records whose
  rows carry bare floats (no spread) degrade gracefully to the purely
  relative test.

Timings are extracted from a record's table by column: any cell that
is a serialized :class:`~repro.bench.harness.TimingStats` (a dict with
``best``), or a plain number under a header ending in ``(s)``, keyed
as ``"<first row cell>/<header>"``.  ``repro profile --json`` output
(``repro-profile/1``) is accepted too — its per-phase measured
seconds become ledger timings — so profile runs can ride the same
regression gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["Timing", "machine_key", "extract_timings", "history_entry",
           "append_history", "load_history", "Delta", "Comparison",
           "compare_records", "HISTORY_SCHEMA"]

#: Version tag of the history-line layout (bump on incompatible change).
HISTORY_SCHEMA = "repro-bench-history/1"

#: Noise-aware comparison defaults: +50% relative budget, widened by
#: 3 standard deviations of the noisier measurement.
DEFAULT_REL_TOL = 0.5
DEFAULT_SIGMA = 3.0


@dataclass(frozen=True)
class Timing:
    """One extracted wall-clock measurement (seconds)."""

    best: float
    std: float = 0.0
    repeats: int = 1

    def to_json(self) -> dict[str, Any]:
        return {"best": self.best, "std": self.std,
                "repeats": self.repeats}

    @classmethod
    def from_json(cls, d: dict[str, Any]) -> Timing:
        return cls(best=float(d["best"]), std=float(d.get("std", 0.0)),
                   repeats=int(d.get("repeats", 1)))


def machine_key(record: dict[str, Any]) -> str:
    """The history shard a record belongs to.

    Architecture, python version and benchmark scale — the identity
    axes along which absolute timings are comparable.  Records from
    different keys are never diffed against each other.
    """
    return (f"{record.get('machine', 'unknown')}"
            f"-py{record.get('python', 'unknown')}"
            f"-{record.get('scale', 'ci')}")


def extract_timings(record: dict[str, Any]) -> dict[str, Timing]:
    """All wall-clock timings of a record, keyed ``"<row>/<column>"``.

    Accepts ``repro-bench-record/*`` tables (cells that are serialized
    :class:`~repro.bench.harness.TimingStats`, or plain numbers under
    a header ending in ``(s)``) and ``repro-profile/*`` documents
    (per-phase measured seconds, keyed ``"<phase>/measured (s)"``).
    """
    schema = str(record.get("schema", ""))
    out: dict[str, Timing] = {}
    if schema.startswith("repro-profile/"):
        for row in record.get("rows", []):
            out[f"{row['phase']}/measured (s)"] = Timing(
                best=float(row["measured"]))
        return out
    headers = [str(h) for h in record.get("headers", [])]
    for row in record.get("rows", []):
        row = list(row)
        row_key = str(row[0]) if row else "?"
        for header, cell in zip(headers, row):
            if isinstance(cell, dict) and "best" in cell:
                out[f"{row_key}/{header}"] = Timing.from_json(cell)
            elif (header.endswith("(s)")
                    and isinstance(cell, (int, float))
                    and not isinstance(cell, bool)):
                out[f"{row_key}/{header}"] = Timing(best=float(cell))
    return out


def history_entry(record: dict[str, Any]) -> dict[str, Any]:
    """The JSONL history line for one benchmark record."""
    return {"schema": HISTORY_SCHEMA,
            "machine_key": machine_key(record),
            "name": record.get("name"),
            "unix_time": record.get("unix_time"),
            "timings": {key: timing.to_json()
                        for key, timing in
                        extract_timings(record).items()}}


def append_history(record: dict[str, Any],
                   path: str | Path) -> dict[str, Any]:
    """Append one record's history line to the ledger; returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = history_entry(record)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str | Path, *, machine: str | None = None,
                 name: str | None = None) -> list[dict[str, Any]]:
    """Parse a history ledger, optionally filtered by shard and name."""
    out = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if machine is not None and entry.get("machine_key") != machine:
                continue
            if name is not None and entry.get("name") != name:
                continue
            out.append(entry)
    return out


@dataclass
class Delta:
    """One baseline-vs-current timing comparison."""

    key: str
    baseline: Timing
    current: Timing
    rel_tol: float = DEFAULT_REL_TOL
    sigma: float = DEFAULT_SIGMA

    @property
    def ratio(self) -> float:
        """current.best / baseline.best (``inf`` for a zero baseline)."""
        if self.baseline.best == 0.0:
            return float("inf") if self.current.best > 0.0 else 1.0
        return self.current.best / self.baseline.best

    @property
    def threshold(self) -> float:
        """Seconds above which the current timing counts as regressed."""
        return (self.baseline.best * (1.0 + self.rel_tol)
                + self.sigma * max(self.baseline.std, self.current.std))

    @property
    def regressed(self) -> bool:
        return self.current.best > self.threshold


@dataclass
class Comparison:
    """Result of diffing one record against a baseline."""

    name: str
    deltas: list[Delta] = field(default_factory=list)
    #: Baseline timing keys absent from the current record — a renamed
    #: or dropped measurement can hide a regression, so missing keys
    #: fail the comparison until the baseline is updated deliberately.
    missing: list[str] = field(default_factory=list)
    #: Current-record keys the baseline does not know (informational).
    new: list[str] = field(default_factory=list)
    #: True when the records came from different machine keys (the
    #: comparison still runs, but absolute thresholds mean little).
    cross_machine: bool = False

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def format_table(self) -> str:
        from .harness import format_table

        rows: list[list[Any]] = []
        for d in sorted(self.deltas, key=lambda d: d.key):
            rows.append([d.key, f"{d.baseline.best:.4g}",
                         f"{d.current.best:.4g}",
                         f"{d.threshold:.4g}", f"{d.ratio:.2f}x",
                         "REGRESSED" if d.regressed else "ok"])
        for key in sorted(self.missing):
            rows.append([key, "-", "-", "-", "-", "MISSING"])
        title = f"bench compare: {self.name}"
        if self.cross_machine:
            title += " (cross-machine: thresholds are advisory)"
        return format_table(
            title, ["timing", "baseline (s)", "current (s)",
                    "threshold (s)", "ratio", "status"], rows)


def compare_records(current: dict[str, Any], baseline: dict[str, Any],
                    *, rel_tol: float = DEFAULT_REL_TOL,
                    sigma: float = DEFAULT_SIGMA) -> Comparison:
    """Noise-aware diff of a current record against a baseline.

    Every timing the baseline knows must be present and within
    threshold for :attr:`Comparison.ok`; see the module docstring for
    the regression criterion.
    """
    base = extract_timings(baseline)
    cur = extract_timings(current)
    comparison = Comparison(
        name=str(current.get("name", baseline.get("name", "?"))),
        cross_machine=machine_key(current) != machine_key(baseline))
    for key, base_timing in base.items():
        if key not in cur:
            comparison.missing.append(key)
            continue
        comparison.deltas.append(Delta(
            key=key, baseline=base_timing, current=cur[key],
            rel_tol=rel_tol, sigma=sigma))
    comparison.new = [k for k in cur if k not in base]
    return comparison
