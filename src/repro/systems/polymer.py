"""Bead-spring polymer chains.

Not part of the paper's evaluation, but the natural "large biological
system" workload its conclusion targets; used by the polymer example
application to exercise bonded forces through the public API.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..geometry.box import Box
from ..units import FluidParams, REDUCED
from .suspension import Suspension

__all__ = ["bead_spring_chain"]


def bead_spring_chain(n_beads: int, bond_length: float, box: Box,
                      fluid: FluidParams = REDUCED,
                      seed: int | np.random.Generator | None = 0,
                      max_regrow: int = 10000
                      ) -> tuple[Suspension, np.ndarray]:
    """A self-avoiding random-walk chain of ``n_beads`` in a periodic box.

    Each step extends the chain by ``bond_length`` in a uniformly random
    direction, rejecting steps that bring the new bead within ``2a`` of
    any earlier bead (checked with minimum-image distances).

    Returns
    -------
    (suspension, bonds):
        The chain as a :class:`~repro.systems.suspension.Suspension`
        and the ``(n_beads - 1, 2)`` bond index array for
        :class:`repro.core.forces.HarmonicBonds`.
    """
    if n_beads < 2:
        raise ConfigurationError(f"need at least 2 beads, got {n_beads}")
    if bond_length < 2.0 * fluid.radius:
        raise ConfigurationError(
            f"bond_length {bond_length} would overlap beads of radius "
            f"{fluid.radius}")
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    positions = np.empty((n_beads, 3))
    positions[0] = rng.uniform(0, box.length, size=3)
    for b in range(1, n_beads):
        for _ in range(max_regrow):
            direction = rng.standard_normal(3)
            direction /= np.linalg.norm(direction)
            cand = positions[b - 1] + bond_length * direction
            dr = box.minimum_image(cand - positions[:b])
            if np.all((dr * dr).sum(axis=1) >= (2.0 * fluid.radius) ** 2):
                positions[b] = cand
                break
        else:
            raise ConfigurationError(
                f"could not grow bead {b} without overlap; "
                "increase bond_length or the box")
    bonds = np.stack([np.arange(n_beads - 1), np.arange(1, n_beads)], axis=1)
    return Suspension(box.wrap(positions), box, fluid), bonds
