"""Initial particle configurations.

The paper's experiments use "a monodisperse suspension model of n
particles with various volume fractions" (Section V.A).  This
subpackage generates those systems:

* :func:`~repro.systems.suspension.random_suspension` -- random
  sequential addition (non-overlapping) for dilute/moderate packings,
* :func:`~repro.systems.suspension.lattice_suspension` -- jittered FCC
  for dense packings where RSA saturates,
* :func:`~repro.systems.suspension.make_suspension` -- automatic choice,
* :mod:`~repro.systems.lattice` -- plain cubic and FCC lattices,
* :mod:`~repro.systems.polymer` -- bead-spring chains for the polymer
  example application.
"""

from .lattice import simple_cubic_positions, fcc_positions
from .suspension import (
    Suspension,
    make_suspension,
    random_suspension,
    lattice_suspension,
)
from .polymer import bead_spring_chain

__all__ = [
    "simple_cubic_positions",
    "fcc_positions",
    "Suspension",
    "make_suspension",
    "random_suspension",
    "lattice_suspension",
    "bead_spring_chain",
]
