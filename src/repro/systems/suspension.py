"""Monodisperse suspension generation (paper Section V.A).

The paper's test systems are monodisperse suspensions of spheres at
volume fractions ``Phi`` from 0.1 to 0.4.  Two generators are provided:

* random sequential addition (RSA) with cell-list overlap checks —
  genuinely random, but RSA saturates near ``Phi ~ 0.30`` for
  non-overlapping spheres,
* a jittered FCC lattice — reaches any ``Phi`` up to close packing and
  decorrelates quickly under BD with the repulsive potential.

:func:`make_suspension` chooses automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ConvergenceError
from ..geometry.box import Box
from ..neighbor.celllist import CellList
from ..units import FluidParams, REDUCED
from .lattice import fcc_positions

__all__ = ["Suspension", "random_suspension", "lattice_suspension",
           "make_suspension"]

#: Volume fraction above which RSA becomes impractically slow.
RSA_LIMIT = 0.30


@dataclass(frozen=True)
class Suspension:
    """A generated suspension: positions plus the defining parameters.

    Attributes
    ----------
    positions:
        Particle centers, shape ``(n, 3)``, wrapped into the box.
    box:
        The periodic box sized for the requested volume fraction.
    fluid:
        Fluid parameters used for the particle radius.
    """

    positions: np.ndarray
    box: Box
    fluid: FluidParams

    @property
    def n(self) -> int:
        """Number of particles."""
        return self.positions.shape[0]

    @property
    def volume_fraction(self) -> float:
        """Actual volume fraction of the configuration."""
        return self.box.volume_fraction(self.n, self.fluid.radius)

    def min_separation(self) -> float:
        """Smallest minimum-image pair distance (overlap diagnostics)."""
        cutoff = min(4.0 * self.fluid.radius, self.box.length / 2)
        i, j = CellList(self.box, cutoff).pairs(self.positions)
        if i.size == 0:
            return float("inf")
        _, dist = self.box.distances(self.positions, i, j)
        return float(dist.min())


def random_suspension(n: int, volume_fraction: float,
                      fluid: FluidParams = REDUCED,
                      seed: int | np.random.Generator | None = 0,
                      max_attempts_per_particle: int = 2000) -> Suspension:
    """Non-overlapping random suspension via random sequential addition.

    Particles are inserted one at a time at uniform positions, rejecting
    any insertion closer than ``2a`` to an existing particle (checked
    through a cell list over the accepted set).

    Raises
    ------
    ConvergenceError
        If an insertion cannot be placed within the attempt budget
        (use :func:`lattice_suspension` for dense packings).
    """
    if not (0 < volume_fraction < 0.74):
        raise ConfigurationError(
            f"volume_fraction must be in (0, 0.74), got {volume_fraction}")
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    box = Box.for_volume_fraction(n, volume_fraction, fluid.radius)
    two_a = 2.0 * fluid.radius
    if box.length < 2 * two_a:
        raise ConfigurationError(
            f"box ({box.length:.3g}) too small for non-overlapping spheres")

    accepted = np.empty((n, 3))
    count = 0
    # cells over accepted particles, rebuilt geometrically as the set grows
    while count < n:
        batch = max(64, count)  # insert in batches to amortize cell builds
        cl = CellList(box, two_a)
        for _ in range(max_attempts_per_particle):
            m = min(batch, n - count)
            cand = rng.uniform(0.0, box.length, size=(m, 3))
            ok = np.ones(m, dtype=bool)
            if count:
                # distance of each candidate to accepted set via one
                # combined pair search over the union
                union = np.concatenate([accepted[:count], cand])
                i, j = cl.pairs(union)
                bad_pairs = (i < count) != (j < count)  # accepted-candidate
                bad = np.unique(np.where(j[bad_pairs] >= count,
                                         j[bad_pairs], i[bad_pairs]) - count)
                ok[bad] = False
            # candidates must also not overlap each other
            cand_ok = cand[ok]
            if cand_ok.shape[0] > 1:
                i, j = cl.pairs(cand_ok)
                mask = np.ones(cand_ok.shape[0], dtype=bool)
                mask[j] = False  # keep the first of each overlapping pair
                cand_ok = cand_ok[mask]
            take = min(cand_ok.shape[0], n - count)
            if take:
                accepted[count:count + take] = cand_ok[:take]
                count += take
                break
        else:
            raise ConvergenceError(
                f"RSA failed to place particle {count + 1}/{n} at "
                f"Phi={volume_fraction}; use lattice_suspension")
    return Suspension(accepted, box, fluid)


def _resolve_overlaps(positions: np.ndarray, box: Box, radius: float,
                      rng: np.random.Generator, max_sweeps: int = 500
                      ) -> np.ndarray:
    """Project overlapping pairs apart until all separations are >= 2a.

    A Gauss-Seidel-style contact solver: every overlapping pair is
    pushed apart symmetrically along its axis by half the overlap (plus
    a small safety margin) per sweep.  Converges quickly for the mild
    overlaps left by lattice granularity at volume fractions well below
    random close packing.
    """
    contact = 2.0 * radius
    target = contact * 1.0001
    r = box.wrap(positions.copy())
    for _ in range(max_sweeps):
        i, j = CellList(box, contact).pairs(r)
        if i.size == 0:
            return r
        rij, dist = box.distances(r, i, j)
        bad = dist < contact
        if not np.any(bad):
            return r
        i, j, rij, dist = i[bad], j[bad], rij[bad], dist[bad]
        # degenerate coincident pairs get a random separation axis
        zero = dist < 1e-12
        if np.any(zero):
            rij[zero] = rng.standard_normal((int(zero.sum()), 3))
            dist[zero] = np.linalg.norm(rij[zero], axis=1)
        push = 0.5 * (target - dist) / dist
        delta = np.zeros_like(r)
        np.add.at(delta, i, push[:, None] * rij)
        np.add.at(delta, j, -push[:, None] * rij)
        r = box.wrap(r + delta)
    raise ConvergenceError(
        "could not resolve particle overlaps; volume fraction too high "
        "for the lattice generator")


def lattice_suspension(n: int, volume_fraction: float,
                       fluid: FluidParams = REDUCED,
                       seed: int | np.random.Generator | None = 0,
                       jitter: float = 0.3) -> Suspension:
    """Jittered-FCC suspension for any achievable volume fraction.

    Sites of an FCC lattice are displaced by uniform random jitter.
    Because the smallest FCC lattice holding ``n`` sites can be denser
    than the target packing (integer granularity of ``4 m^3``), any
    residual overlaps are removed with a contact-projection pass, so
    the returned configuration always satisfies ``min_separation >= 2a``.
    """
    if not (0 < volume_fraction < 0.74):
        raise ConfigurationError(
            f"volume_fraction must be in (0, 0.74), got {volume_fraction}")
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    box = Box.for_volume_fraction(n, volume_fraction, fluid.radius)
    sites = fcc_positions(n, box.length)
    # nearest-neighbor spacing of the conventional FCC cell used
    m = 1
    while 4 * m ** 3 < n:
        m += 1
    nn_dist = box.length / m / np.sqrt(2.0)
    gap = max(nn_dist - 2.0 * fluid.radius, 0.0)
    amplitude = jitter * max(gap, 0.1 * fluid.radius) / np.sqrt(3.0)
    positions = box.wrap(sites + rng.uniform(-amplitude, amplitude,
                                             size=sites.shape))
    positions = _resolve_overlaps(positions, box, fluid.radius, rng)
    return Suspension(positions, box, fluid)


def make_suspension(n: int, volume_fraction: float,
                    fluid: FluidParams = REDUCED,
                    seed: int | np.random.Generator | None = 0) -> Suspension:
    """Generate a suspension, picking RSA or jittered FCC by density."""
    if volume_fraction <= RSA_LIMIT:
        return random_suspension(n, volume_fraction, fluid, seed)
    return lattice_suspension(n, volume_fraction, fluid, seed)
