"""Regular lattice generators for initial configurations."""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError

__all__ = ["simple_cubic_positions", "fcc_positions"]


def simple_cubic_positions(n: int, box_length: float) -> np.ndarray:
    """``n`` sites of a simple cubic lattice filling a periodic cube.

    The lattice has ``ceil(n^(1/3))`` sites per dimension; the first
    ``n`` (lexicographic) sites are returned, offset by half a spacing
    so no particle sits on the box boundary.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    m = math.ceil(n ** (1.0 / 3.0))
    while m ** 3 < n:  # guard against floating-point cube roots
        m += 1
    spacing = box_length / m
    idx = np.arange(m ** 3)[:n]
    coords = np.stack(np.unravel_index(idx, (m, m, m)), axis=1).astype(np.float64)
    return (coords + 0.5) * spacing


def fcc_positions(n: int, box_length: float) -> np.ndarray:
    """``n`` sites of a face-centered-cubic lattice in a periodic cube.

    FCC packs four sites per conventional cell, reaching volume
    fractions a simple cubic lattice cannot; used for dense suspensions.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    m = 1
    while 4 * m ** 3 < n:
        m += 1
    spacing = box_length / m
    base = np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.0],
                     [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]])
    cells = np.stack(np.meshgrid(*(np.arange(m),) * 3, indexing="ij"),
                     axis=-1).reshape(-1, 3).astype(np.float64)
    sites = (cells[:, None, :] + base[None, :, :]).reshape(-1, 3)
    return (sites[:n] + 0.25) * spacing
