"""The ensemble supervisor: worker pool, watchdog, retry, drain.

The supervisor shards a campaign of :class:`~repro.runtime.tasks.TaskSpec`
members across OS worker processes and keeps the campaign alive through
every process-level failure the fault plan (or reality) throws at it:

* **worker death** — the process sentinel fires; the task retries from
  its latest block-aligned checkpoint on a respawned worker,
* **hang** — heartbeats stop; the watchdog SIGKILLs the worker after
  ``hang_timeout`` seconds of silence,
* **slowness** — heartbeats continue but the per-task ``deadline``
  expires; same kill-and-retry path,
* **corrupt result** — the recomputed SHA-256 of the returned
  positions disagrees with the digest the worker computed before
  transmission; the payload is discarded and the task retried.

Retries are spaced by the shared
:class:`~repro.resilience.backoff.BackoffPolicy` (exponential with
deterministic per-task jitter).  A per-task
:class:`~repro.resilience.backoff.CircuitBreaker` escalates repeated
failures: the first trip reroutes the task to *safe mode* (the PR-2
recovery ladder with dense-reference fallback enabled), a second trip
quarantines it with a structured failure report — the campaign never
wedges on one sick member.

SIGTERM/SIGINT (via :class:`~repro.runtime.signals.GracefulShutdown`)
triggers a drain: no new assignments, workers stop at their next block
boundary, final checkpoints and a resumable
:class:`~repro.runtime.tasks.CampaignManifest` are written.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Sequence

from .. import obs
from ..errors import ConfigurationError
from ..obs.collect import CampaignCollection, TraceContext, collect_campaign
from ..resilience.backoff import BackoffPolicy, CircuitBreaker
from ..resilience.failures import FailureKind, StepFailure
from ..utils.timing import now
from .faults import ProcessFaultPlan
from .signals import GracefulShutdown
from .tasks import (
    CampaignManifest,
    TaskRecord,
    TaskSpec,
    TaskState,
    positions_digest,
)
from .worker import DEFAULT_HEARTBEAT_INTERVAL, worker_main

__all__ = ["Supervisor", "SupervisorReport", "WorkerRestart"]


def _mp_context():
    """Fork when available (fast respawn), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _campaign_trace_id(specs: Sequence[TaskSpec]) -> str:
    """Deterministic campaign trace id derived from the task set.

    Depends only on the specs' identities (ids, seeds, sizes) — never
    on wall clock or pid — so a resumed campaign merges under the same
    id as its first run.
    """
    h = hashlib.sha256()
    for s in specs:
        h.update(f"{s.task_id}:{s.n}:{s.n_steps}:{s.seed}:"
                 f"{s.system_seed}\n".encode())
    return "campaign-" + h.hexdigest()[:12]


@dataclass
class WorkerRestart:
    """One supervised worker replacement."""

    worker_id: int
    reason: str
    task_id: int | None


@dataclass
class SupervisorReport:
    """Outcome of one :meth:`Supervisor.run` campaign."""

    manifest: CampaignManifest
    restarts: list[WorkerRestart] = field(default_factory=list)
    fault_plan: ProcessFaultPlan | None = None
    #: Largest heartbeat silence observed on a live worker (seconds).
    max_heartbeat_lag: float = 0.0
    drained: bool = False
    #: Merged cross-process observability (``None`` when tracing and
    #: metrics were both off for the campaign).
    collection: CampaignCollection | None = None

    @property
    def digests(self) -> dict[int, str]:
        """Final-position digests of every completed task."""
        return {t.spec.task_id: t.digest for t in self.manifest.tasks
                if t.state is TaskState.DONE and t.digest is not None}

    def summary(self) -> str:
        counts = self.manifest.counts()
        parts = [f"{counts.get(s.value, 0)} {s.value}" for s in TaskState]
        line = f"tasks: {', '.join(parts)}; restarts: {len(self.restarts)}"
        if self.fault_plan is not None and self.fault_plan.faults:
            n = len(self.fault_plan.faults)
            line += (f"; faults: {n - len(self.fault_plan.unaccounted())}"
                     f"/{n} accounted")
        if self.drained:
            line += "; drained (resumable)"
        return line


class _WorkerHandle:
    """Supervisor-side state of one worker process."""

    def __init__(self, worker_id: int, ctx, stop_event):
        self.worker_id = worker_id
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main, args=(child_conn, stop_event, worker_id),
            daemon=True, name=f"repro-worker-{worker_id}")
        self.process.start()
        child_conn.close()
        self.task: TaskRecord | None = None
        self.last_heartbeat = now()
        self.started_at = now()
        self.obs_t0 = obs.clock()

    @property
    def busy(self) -> bool:
        return self.task is not None

    def assign(self, record: TaskRecord, fault, *, checkpoint_dir: str,
               slow_per_step: float, heartbeat_interval: float,
               obs_config: dict[str, Any] | None = None,
               exec_config: dict[str, Any] | None = None) -> None:
        spec = record.spec
        if obs_config is not None:
            # stamp the trace context on the wire copy only — the
            # manifest record (and its determinism contract) stays
            # exactly as configured
            spec = dataclasses.replace(
                spec, trace=TraceContext(trace_id=obs_config["trace_id"],
                                         task_id=spec.task_id))
        message: dict[str, Any] = {
            "cmd": "task", "spec": spec.to_json(),
            "attempt": record.attempts, "safe_mode": record.safe_mode,
            "checkpoint_dir": checkpoint_dir,
            "slow_per_step": slow_per_step,
            "heartbeat_interval": heartbeat_interval,
        }
        if obs_config is not None:
            message["obs"] = obs_config
        if exec_config is not None:
            message["exec"] = exec_config
        if fault is not None:
            message["fault"] = {"kind": fault.kind, "at_step": fault.at_step}
        self.conn.send(message)
        record.attempts += 1
        record.state = TaskState.RUNNING
        self.task = record
        self.last_heartbeat = now()
        self.started_at = now()
        self.obs_t0 = obs.clock()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)
        self.conn.close()

    def shutdown(self) -> None:
        try:
            self.conn.send({"cmd": "shutdown"})
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=10.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=10.0)
        self.conn.close()


class Supervisor:
    """Run a campaign of tasks on a supervised worker pool.

    Parameters
    ----------
    tasks:
        Campaign members — :class:`TaskSpec` for a fresh campaign or
        :class:`TaskRecord` (e.g. from a loaded manifest) to resume;
        ``DONE``/``QUARANTINED`` records are kept as-is, everything
        else restarts from its latest checkpoint.
    checkpoint_dir:
        Directory holding per-task rotating checkpoints and (by
        default) the campaign manifest.
    n_workers:
        Worker-process pool size.
    deadline:
        Optional per-task-attempt wall-clock budget in seconds; an
        attempt exceeding it is killed and retried ("deadline").
    hang_timeout:
        Seconds of heartbeat silence after which a busy worker is
        declared hung and killed ("hang-timeout").
    backoff:
        Retry spacing; jitter is seeded per task, so the schedule is
        deterministic and replay-identical.
    breaker_threshold:
        Consecutive failures before a task's circuit breaker opens
        (first trip: safe-mode reroute; second trip: quarantine).
    fault_plan:
        Optional :class:`ProcessFaultPlan`; faults are assigned at
        :meth:`run` start and injected on first attempts only.
    manifest_path:
        Where the resumable manifest is written; defaults to
        ``<checkpoint_dir>/campaign.json``.
    max_worker_restarts:
        Abort budget — more restarts than this raise
        :class:`StepFailure` (the pool itself is sick, e.g. an OOM
        loop; retrying forever would thrash).
    poll_interval:
        Event-loop wait granularity in seconds.
    """

    def __init__(self, tasks: Sequence[TaskSpec | TaskRecord],
                 checkpoint_dir: str, *, n_workers: int = 2,
                 deadline: float | None = None, hang_timeout: float = 5.0,
                 backoff: BackoffPolicy | None = None,
                 breaker_threshold: int = 3,
                 fault_plan: ProcessFaultPlan | None = None,
                 manifest_path: str | None = None,
                 max_worker_restarts: int = 50,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 poll_interval: float = 0.05):
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}")
        self.records: list[TaskRecord] = []
        for task in tasks:
            record = (task if isinstance(task, TaskRecord)
                      else TaskRecord(spec=task))
            if record.state is TaskState.RUNNING:
                record.state = TaskState.PENDING  # interrupted: resume
            self.records.append(record)
        self.checkpoint_dir = checkpoint_dir
        self.n_workers = n_workers
        self.deadline = deadline
        self.hang_timeout = hang_timeout
        self.backoff = backoff or BackoffPolicy()
        self.breaker_threshold = breaker_threshold
        self.fault_plan = fault_plan
        self.manifest_path = (manifest_path
                              or f"{checkpoint_dir}/campaign.json")
        self.max_worker_restarts = max_worker_restarts
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval

        self._breakers = {
            r.spec.task_id: CircuitBreaker(
                failure_threshold=breaker_threshold)
            for r in self.records}
        self._ready_at = {r.spec.task_id: 0.0 for r in self.records}
        self._records_by_id = {r.spec.task_id: r for r in self.records}
        self._draining = False
        self._next_worker_id = 0
        self._ctx = _mp_context()
        self._stop_event = self._ctx.Event()
        self.trace_id = _campaign_trace_id(
            [r.spec for r in self.records])

    # -- worker pool -----------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        handle = _WorkerHandle(self._next_worker_id, self._ctx,
                               self._stop_event)
        self._next_worker_id += 1
        return handle

    def _exec_config(self) -> dict[str, Any] | None:
        """Per-worker execution sizing (``None`` on the serial backend).

        The configured worker budget is divided evenly between the
        ensemble workers so co-resident tasks don't oversubscribe the
        machine.  A configured ``processes`` backend is downgraded to
        ``threads`` inside the workers: they are daemonic processes and
        may not fork a nested pool (and the colored pipeline is
        bit-identical across backends anyway).
        """
        from ..config import get_config
        cfg = get_config()
        if cfg.backend == "serial":
            return None
        backend = "threads" if cfg.backend == "processes" else cfg.backend
        share = max(1, cfg.resolved_workers() // self.n_workers)
        return {"backend": backend, "workers": share}

    def _obs_config(self) -> dict[str, Any] | None:
        """Worker observability config (``None`` when obs is off)."""
        trace = obs.tracing_enabled()
        metrics = obs.metrics_enabled()
        if not (trace or metrics):
            return None
        tracer = obs.get_tracer()
        return {"trace": trace, "metrics": metrics,
                "spool_dir": self.checkpoint_dir,
                "trace_id": self.trace_id,
                "max_events": (tracer.max_events if tracer is not None
                               else 1_000_000)}

    def _task_span(self, handle: _WorkerHandle, outcome: str) -> None:
        """Record the supervisor-side ``supervisor.task`` interval.

        The worker-side half of the correlation carries the same
        ``task`` id in schema-v2 event fields; :func:`spans_for_task`
        joins the two in the merged timeline.
        """
        tracer = obs.get_tracer()
        if tracer is None or handle.task is None:
            return
        tracer.add_interval(
            "supervisor.task", handle.obs_t0,
            obs.clock() - handle.obs_t0,
            task=handle.task.spec.task_id, worker=handle.worker_id,
            attempt=handle.task.attempts - 1, outcome=outcome)

    def _replace_worker(self, handle: _WorkerHandle, reason: str,
                        report: SupervisorReport) -> _WorkerHandle | None:
        """Kill (if needed) and respawn a worker; requeue its task."""
        task_id = handle.task.spec.task_id if handle.task else None
        self._task_span(handle, reason)
        handle.kill()
        report.restarts.append(
            WorkerRestart(handle.worker_id, reason, task_id))
        self._manifest.worker_restarts[reason] = (
            self._manifest.worker_restarts.get(reason, 0) + 1)
        obs.inc("worker_restarts_total", reason=reason)
        obs.instant("supervisor.worker_restart",
                    worker=handle.worker_id, reason=reason,
                    task=-1 if task_id is None else task_id)
        if handle.task is not None:
            self._task_failed(handle.task, reason, report)
        if len(report.restarts) > self.max_worker_restarts:
            raise StepFailure(
                FailureKind.UNKNOWN,
                f"worker restart budget exhausted "
                f"({self.max_worker_restarts}); aborting campaign")
        if self._draining:
            return None  # no respawns while draining
        return self._spawn()

    # -- task lifecycle --------------------------------------------------

    def _task_failed(self, record: TaskRecord, reason: str,
                     report: SupervisorReport,
                     failure: dict[str, Any] | None = None) -> None:
        """Route a failed attempt: backoff retry, safe mode, quarantine."""
        task_id = record.spec.task_id
        record.failure = failure or {"kind": "process-fault",
                                     "message": reason,
                                     "attempt": record.attempts - 1}
        if self.fault_plan is not None:
            self.fault_plan.observe(task_id, reason)
        breaker = self._breakers[task_id]
        if breaker.record_failure():
            if not record.safe_mode:
                # first trip: reroute through the recovery ladder with
                # the dense-reference fallback armed, and start over
                record.safe_mode = True
                breaker.reset()
                obs.instant("supervisor.safe_mode", task=task_id)
            else:
                record.state = TaskState.QUARANTINED
                obs.instant("supervisor.quarantine", task=task_id)
                self._save_manifest()
                return
        record.state = TaskState.PENDING
        delay = self.backoff.delay(max(0, record.attempts - 1),
                                   seed=task_id)
        self._ready_at[task_id] = now() + delay
        self._save_manifest()

    def _task_done(self, record: TaskRecord, message: dict[str, Any],
                   report: SupervisorReport) -> bool:
        """Verify and commit a ``done`` message; False = corrupt."""
        digest = positions_digest(message["positions"])
        if digest != message["digest"]:
            return False
        record.state = TaskState.DONE
        record.completed_step = message["completed_step"]
        record.digest = digest
        record.checkpoint = record.spec.checkpoint_path(self.checkpoint_dir)
        record.failure = None
        obs.observe("supervisor_task_retries", record.attempts - 1)
        self._save_manifest()
        return True

    def _assignable(self) -> TaskRecord | None:
        """Next pending task whose backoff delay has elapsed."""
        t = now()
        for record in self.records:
            if (record.state is TaskState.PENDING
                    and self._ready_at[record.spec.task_id] <= t):
                return record
        return None

    def _pending(self) -> list[TaskRecord]:
        return [r for r in self.records if r.state is TaskState.PENDING]

    def _save_manifest(self) -> None:
        self._manifest.save(self.manifest_path)

    # -- event loop ------------------------------------------------------

    def run(self, shutdown: GracefulShutdown | None = None
            ) -> SupervisorReport:
        """Drive the campaign to completion (or drain); blocking.

        With ``shutdown`` supplied, a delivered SIGTERM/SIGINT turns
        the loop into a drain: running tasks stop at their next block
        boundary, nothing new is assigned, and the saved manifest is
        resumable.
        """
        self._manifest = CampaignManifest(
            tasks=self.records,
            fault_spec=(None if self.fault_plan is None
                        else self.fault_plan.to_spec()))
        report = SupervisorReport(manifest=self._manifest,
                                  fault_plan=self.fault_plan)
        if self.fault_plan is not None and not self.fault_plan.faults:
            self.fault_plan.assign(
                [r.spec.task_id for r in self._pending()],
                {r.spec.task_id: r.spec.n_steps for r in self.records})
        self._save_manifest()

        workers = [self._spawn()
                   for _ in range(min(self.n_workers,
                                      max(1, len(self._pending()))))]
        with obs.span("supervisor.run", tasks=len(self.records),
                      workers=len(workers)):
            try:
                self._loop(workers, report, shutdown)
            finally:
                for handle in workers:
                    handle.shutdown()
                self._manifest.drained = report.drained = self._draining
                self._save_manifest()
        # collect *after* the supervisor.run span closed so the merged
        # timeline contains it; workers have flushed their spools
        if obs.tracing_enabled() or obs.metrics_enabled():
            report.collection = collect_campaign(
                self.checkpoint_dir,
                supervisor_tracer=obs.get_tracer(),
                supervisor_registry=obs.get_metrics(),
                trace_id=self.trace_id)
            report.collection.write_defaults(self.checkpoint_dir)
        return report

    def request_drain(self) -> None:
        """Stop assigning work and drain workers at block boundaries."""
        if not self._draining:
            self._draining = True
            self._stop_event.set()
            obs.instant("supervisor.drain_requested")

    def _loop(self, workers: list[_WorkerHandle],
              report: SupervisorReport,
              shutdown: GracefulShutdown | None) -> None:
        while True:
            if (shutdown is not None and shutdown.triggered
                    and not self._draining):
                self.request_drain()

            # assign ready tasks to idle workers
            if not self._draining:
                for handle in workers:
                    if handle.busy:
                        continue
                    record = self._assignable()
                    if record is None:
                        break
                    fault = None
                    if self.fault_plan is not None:
                        fault = self.fault_plan.fault_for(
                            record.spec.task_id, record.attempts)
                    handle.assign(
                        record, fault, checkpoint_dir=self.checkpoint_dir,
                        slow_per_step=(self.fault_plan.slow_per_step
                                       if self.fault_plan else 0.0),
                        heartbeat_interval=self.heartbeat_interval,
                        obs_config=self._obs_config(),
                        exec_config=self._exec_config())

            busy = [h for h in workers if h.busy]
            if not busy and (self._draining or not self._pending()):
                return
            if not busy and self._pending():
                # every pending task is in a backoff window; idle-wait
                time.sleep(self.poll_interval)
                continue

            sources: list[Any] = [h.conn for h in workers]
            sources += [h.process.sentinel for h in workers]
            ready = connection.wait(sources, timeout=self.poll_interval)

            for handle in list(workers):
                if handle.conn in ready:
                    self._drain_conn(handle, report)
                if (not handle.process.is_alive()
                        and handle.process.sentinel in ready):
                    replacement = self._replace_worker(
                        handle, "worker-death", report)
                    workers.remove(handle)
                    if replacement is not None:
                        workers.append(replacement)

            self._watchdog(workers, report)

    def _drain_conn(self, handle: _WorkerHandle,
                    report: SupervisorReport) -> None:
        """Consume every message queued on one worker's pipe."""
        while True:
            try:
                if not handle.conn.poll():
                    return
                message = handle.conn.recv()
            except (EOFError, OSError):
                return  # death handled via the process sentinel
            handle.last_heartbeat = now()
            kind = message.get("msg")
            record = handle.task
            if kind in ("heartbeat", "ready"):
                continue
            if record is None:
                continue
            if kind == "checkpoint":
                record.completed_step = message["completed_step"]
                record.checkpoint = message["checkpoint"]
            elif kind == "done":
                ok = self._task_done(record, message, report)
                self._task_span(handle, "done" if ok else "corrupt-result")
                handle.task = None
                if not ok:
                    self._task_failed(record, "corrupt-result", report)
            elif kind == "drained":
                self._task_span(handle, "drained")
                handle.task = None
                record.state = TaskState.PENDING
                record.completed_step = message["completed_step"]
                record.checkpoint = message["checkpoint"]
                self._save_manifest()
            elif kind == "failed":
                self._task_span(handle, "failed")
                handle.task = None
                self._task_failed(record, "step-failure", report,
                                  failure=message["failure"])

    def _watchdog(self, workers: list[_WorkerHandle],
                  report: SupervisorReport) -> None:
        """Kill hung (silent) and over-deadline workers."""
        t = now()
        max_lag = 0.0
        for handle in list(workers):
            if not handle.busy or not handle.process.is_alive():
                continue
            lag = t - handle.last_heartbeat
            max_lag = max(max_lag, lag)
            reason = None
            if lag > self.hang_timeout:
                reason = "hang-timeout"
            elif (self.deadline is not None
                    and t - handle.started_at > self.deadline):
                reason = "deadline"
            if reason is not None:
                replacement = self._replace_worker(handle, reason, report)
                workers.remove(handle)
                if replacement is not None:
                    workers.append(replacement)
        report.max_heartbeat_lag = max(report.max_heartbeat_lag, max_lag)
        # running max, not instantaneous: the gauge reports the worst
        # heartbeat silence the campaign ever saw (the quantity the
        # watchdog thresholds against)
        obs.set_gauge("supervisor_heartbeat_lag_seconds",
                      report.max_heartbeat_lag)
