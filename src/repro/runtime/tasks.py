"""Ensemble task descriptions and the resumable campaign manifest.

A *campaign* is an ensemble of independent BD trajectories (the
paper's Fig. 3 diffusion statistics average dozens of them) sharded
across worker processes by the :mod:`~repro.runtime.supervisor`.  Each
member is described by a :class:`TaskSpec` — everything a worker needs
to build and run the simulation deterministically — and tracked in a
:class:`TaskRecord` whose lifecycle the supervisor drives.

The :class:`CampaignManifest` serializes the whole campaign (specs,
states, attempt counts, checkpoint paths, result digests, structured
failure reports) to JSON with the same atomic-rename + directory-fsync
discipline as checkpoints, so a supervisor that is killed — or drains
on SIGTERM — leaves behind everything ``repro ensemble --resume``
needs to continue: finished tasks keep their digests, interrupted
tasks resume from their latest block-aligned checkpoint.

Determinism contract: a task's trajectory depends only on its spec
(seeds, steps, physics parameters) — never on which worker ran it, how
many workers the pool had, or whether it was resumed from a checkpoint
— so a zero-fault campaign produces bit-identical ``digest`` values
for any worker count, fresh or resumed (tested in
``tests/test_runtime.py``).
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from ..core.checkpoint import fsync_directory
from ..errors import ConfigurationError
from ..obs.collect import TraceContext
from ..pme.operator import PMEParams
from ..utils.validation import as_positions

__all__ = ["TaskSpec", "TaskState", "TaskRecord", "CampaignManifest",
           "make_ensemble", "positions_digest"]

_MANIFEST_VERSION = 1


def positions_digest(positions: np.ndarray) -> str:
    """SHA-256 hex digest of a position array's exact bytes.

    The bit-identity currency of the ensemble runtime: two runs agree
    iff their digests agree, with no tolerance haggling.  Finiteness is
    deliberately not checked — the supervisor digests *received*
    payloads precisely to detect corruption, which may well contain
    NaN bit patterns.
    """
    arr = as_positions(positions, check_finite=False)
    return hashlib.sha256(arr.tobytes()).hexdigest()


@dataclass(frozen=True)
class TaskSpec:
    """One ensemble member: a fully deterministic simulation recipe.

    Attributes
    ----------
    task_id:
        Stable index within the campaign (names the checkpoint file).
    n, phi:
        Particle count and volume fraction of the suspension.
    n_steps:
        Total BD steps the task must complete.
    seed:
        Brownian-noise seed of the integrator.
    system_seed:
        Seed of the initial configuration generator.
    dt, lambda_rpy, e_k:
        Integrator parameters (checkpoints are written every
        ``lambda_rpy`` steps — the block-aligned, bit-exact choice).
    pme:
        Explicit :class:`~repro.pme.operator.PMEParams`; ``None``
        auto-tunes (deterministic for a given system).
    forces:
        Include the paper's repulsive contact force field.
    trace:
        Supervisor-assigned :class:`~repro.obs.collect.TraceContext`
        stamped on the *wire copy* of the spec when campaign tracing
        is on (never persisted in the manifest); carries the campaign
        ``trace_id`` into the worker so cross-process spans stay
        correlatable.  Deliberately excluded from the determinism
        contract — a traced and an untraced run of the same spec are
        bit-identical.
    """

    task_id: int
    n: int
    phi: float
    n_steps: int
    seed: int
    system_seed: int
    dt: float = 1e-3
    lambda_rpy: int = 10
    e_k: float = 1e-2
    pme: PMEParams | None = None
    forces: bool = True
    trace: TraceContext | None = None

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ConfigurationError(
                f"n_steps must be >= 1, got {self.n_steps}")
        if self.lambda_rpy < 1:
            raise ConfigurationError(
                f"lambda_rpy must be >= 1, got {self.lambda_rpy}")

    def checkpoint_path(self, directory: str) -> str:
        """The task's rotating checkpoint file inside ``directory``."""
        return os.path.join(directory, f"task-{self.task_id:04d}.ckpt.npz")

    def to_json(self) -> dict[str, Any]:
        d = asdict(self)
        if self.pme is not None:
            d["pme"] = {"xi": self.pme.xi, "r_max": self.pme.r_max,
                        "K": self.pme.K, "p": self.pme.p}
        if self.trace is not None:
            d["trace"] = self.trace.to_json()
        else:
            # keep manifests byte-stable with the pre-trace layout
            d.pop("trace", None)
        return d

    @classmethod
    def from_json(cls, d: dict[str, Any]) -> TaskSpec:
        d = dict(d)
        if d.get("pme") is not None:
            d["pme"] = PMEParams(**d["pme"])
        if d.get("trace") is not None:
            d["trace"] = TraceContext.from_json(d["trace"])
        else:
            d.pop("trace", None)
        return cls(**d)


class TaskState(str, enum.Enum):
    """Lifecycle of a campaign task, driven by the supervisor."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    #: Routed through the circuit breaker too many times; carries a
    #: structured failure report instead of a result.
    QUARANTINED = "quarantined"


@dataclass
class TaskRecord:
    """Mutable supervisor-side state of one task.

    ``completed_step`` is the step of the latest durable block-aligned
    checkpoint (0 = no checkpoint; restart from scratch), which is the
    resume point after a worker death or a campaign ``--resume``.
    """

    spec: TaskSpec
    state: TaskState = TaskState.PENDING
    attempts: int = 0
    completed_step: int = 0
    checkpoint: str | None = None
    digest: str | None = None
    #: True once the circuit breaker rerouted the task to safe mode
    #: (recovery ladder + dense-reference fallback enabled).
    safe_mode: bool = False
    #: Structured report of the last failure (kind, reason, message).
    failure: dict[str, Any] | None = None

    def to_json(self) -> dict[str, Any]:
        return {"spec": self.spec.to_json(), "state": self.state.value,
                "attempts": self.attempts,
                "completed_step": self.completed_step,
                "checkpoint": self.checkpoint, "digest": self.digest,
                "safe_mode": self.safe_mode, "failure": self.failure}

    @classmethod
    def from_json(cls, d: dict[str, Any]) -> TaskRecord:
        return cls(spec=TaskSpec.from_json(d["spec"]),
                   state=TaskState(d["state"]), attempts=d["attempts"],
                   completed_step=d["completed_step"],
                   checkpoint=d.get("checkpoint"), digest=d.get("digest"),
                   safe_mode=d.get("safe_mode", False),
                   failure=d.get("failure"))


@dataclass
class CampaignManifest:
    """The on-disk, resumable record of one ensemble campaign."""

    tasks: list[TaskRecord] = field(default_factory=list)
    #: The --inject-faults spec the campaign ran with (reproducibility).
    fault_spec: str | None = None
    #: True when the campaign ended in a graceful drain (resumable).
    drained: bool = False
    #: Worker restarts observed, as ``{"reason": count}``.
    worker_restarts: dict[str, int] = field(default_factory=dict)

    @property
    def resumable(self) -> bool:
        """Whether any task still has work left."""
        return any(t.state not in (TaskState.DONE, TaskState.QUARANTINED)
                   for t in self.tasks)

    def counts(self) -> dict[str, int]:
        """Tally of task states (manifest summary line)."""
        out: dict[str, int] = {}
        for t in self.tasks:
            out[t.state.value] = out.get(t.state.value, 0) + 1
        return out

    def save(self, path: str | os.PathLike) -> None:
        """Atomically write the manifest (tmp + rename + dir fsync)."""
        payload = {"version": _MANIFEST_VERSION,
                   "fault_spec": self.fault_spec, "drained": self.drained,
                   "worker_restarts": self.worker_restarts,
                   "counts": self.counts(),
                   "tasks": [t.to_json() for t in self.tasks]}
        path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".manifest-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        fsync_directory(directory)

    @classmethod
    def load(cls, path: str | os.PathLike) -> CampaignManifest:
        with open(path) as fh:
            payload = json.load(fh)
        version = payload.get("version")
        if version != _MANIFEST_VERSION:
            raise ConfigurationError(
                f"unsupported campaign manifest version {version!r}")
        return cls(tasks=[TaskRecord.from_json(t) for t in payload["tasks"]],
                   fault_spec=payload.get("fault_spec"),
                   drained=payload.get("drained", False),
                   worker_restarts=payload.get("worker_restarts", {}))


def make_ensemble(n_tasks: int, *, n: int, phi: float, n_steps: int,
                  seed: int = 0, dt: float = 1e-3, lambda_rpy: int = 10,
                  e_k: float = 1e-2, pme: PMEParams | None = None,
                  forces: bool = True) -> list[TaskSpec]:
    """Specs of an ``n_tasks``-member ensemble with derived seeds.

    Per-task noise and configuration seeds come from one
    ``SeedSequence`` expansion of ``seed``, so the ensemble is fully
    reproducible from the campaign seed while its members stay
    statistically independent.
    """
    if n_tasks < 1:
        raise ConfigurationError(f"n_tasks must be >= 1, got {n_tasks}")
    state = np.random.SeedSequence(seed).generate_state(2 * n_tasks)
    return [TaskSpec(task_id=i, n=n, phi=phi, n_steps=n_steps,
                     seed=int(state[2 * i]), system_seed=int(state[2 * i + 1]),
                     dt=dt, lambda_rpy=lambda_rpy, e_k=e_k, pme=pme,
                     forces=forces)
            for i in range(n_tasks)]
