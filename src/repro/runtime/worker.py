"""Worker-process entry point of the ensemble runtime.

Each worker owns one end of a duplex pipe to the supervisor and runs
one :class:`~repro.runtime.tasks.TaskSpec` at a time:

1. build the suspension and integrator *from the spec alone* (never
   from worker-local state — the determinism contract),
2. resume from the task's latest block-aligned checkpoint if one
   exists (``.prev`` fallback; an unusable pair restarts from scratch),
3. step, writing a rotating checkpoint and a ``checkpoint`` message
   every ``lambda_RPY`` steps and pacing ``heartbeat`` messages in
   between,
4. report ``done`` with the final unwrapped positions *and* their
   SHA-256 digest — the supervisor recomputes the digest on receipt,
   so a corrupted payload is detected end-to-end.

Process faults from the :class:`~repro.runtime.faults.ProcessFaultPlan`
are executed here: ``kill`` SIGKILLs the worker mid-step, ``hang``
stops both progress and heartbeats (the supervisor's watchdog must
notice), ``slow`` injects per-step delay while heartbeats continue
(the deadline must notice), and ``corrupt`` flips a byte of the result
payload after the true digest was computed.

A graceful drain (supervisor sets the shared stop event) ends the task
at the next ``lambda_RPY`` block boundary — exactly where a checkpoint
was just written — so a drained campaign resumes bit-identically.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any

import numpy as np

from ..core.checkpoint import (
    fsync_directory,
    load_checkpoint_with_fallback,
    previous_checkpoint_path,
    save_checkpoint,
)
from ..core.forces import RepulsiveHarmonic
from ..core.integrators import MatrixFreeBD
from ..errors import CheckpointCorruptionError, ConfigurationError
from ..obs import set_metrics, set_tracer
from ..obs.collect import SpoolingSession
from ..resilience.failures import StepFailure
from ..resilience.policy import RecoveryPolicy
from ..systems.suspension import make_suspension
from ..utils.timing import now
from .tasks import TaskSpec, positions_digest

__all__ = ["worker_main", "failure_report"]

#: Seconds between heartbeat messages while a task is stepping.
DEFAULT_HEARTBEAT_INTERVAL = 0.05


def failure_report(failure: StepFailure, attempt: int) -> dict[str, Any]:
    """Serialize a :class:`StepFailure` for the campaign manifest."""
    return {"kind": failure.kind.value, "message": str(failure),
            "step": failure.step, "attempt": attempt,
            "diagnostics": {k: v for k, v in failure.diagnostics.items()
                            if isinstance(v, (int, float, str, bool))}}


def _corrupt_payload(positions: np.ndarray) -> np.ndarray:
    """Flip one byte of the position payload (bad-DIMM simulation)."""
    buf = bytearray(np.ascontiguousarray(positions).tobytes())
    buf[0] ^= 0xFF
    return np.frombuffer(bytes(buf),
                         dtype=np.float64).reshape(positions.shape)


def _build_integrator(spec: TaskSpec, safe_mode: bool, context=None):
    suspension = make_suspension(spec.n, spec.phi, seed=spec.system_seed)
    force_field = (RepulsiveHarmonic(suspension.box, suspension.fluid)
                   if spec.forces else None)
    recovery = RecoveryPolicy() if safe_mode else None
    integrator = MatrixFreeBD(
        box=suspension.box, fluid=suspension.fluid,
        force_field=force_field, dt=spec.dt, lambda_rpy=spec.lambda_rpy,
        seed=spec.seed, pme_params=spec.pme, e_k=spec.e_k,
        recovery=recovery, context=context)
    return suspension, integrator


def _run_task(conn, stop_event, spec: TaskSpec, attempt: int,
              fault: dict[str, Any] | None, safe_mode: bool,
              checkpoint_dir: str, slow_per_step: float,
              heartbeat_interval: float,
              session: SpoolingSession | None = None,
              context=None) -> str:
    """Execute one task; reports over ``conn``, returns the outcome."""
    suspension, integrator = _build_integrator(spec, safe_mode,
                                               context=context)
    ckpt_path = spec.checkpoint_path(checkpoint_dir)

    step0 = 0
    start = suspension.positions
    unwrapped0 = None  # continue this exact unwrapped frame on resume
    try:
        wrapped0, unwrapped0, step0, rng, _used = (
            load_checkpoint_with_fallback(ckpt_path))
        integrator.rng = rng
        start = wrapped0
    except FileNotFoundError:
        pass
    except (CheckpointCorruptionError, ConfigurationError):
        # both rotation generations unusable: the only deterministic
        # recovery is a fresh start (same spec -> same trajectory)
        step0 = 0
        unwrapped0 = None

    fault_kind = fault["kind"] if fault is not None else None
    fault_step = fault["at_step"] if fault is not None else -1

    if step0 >= spec.n_steps:
        # resumed past the end (e.g. retry after a corrupt-result
        # fault): the checkpointed unwrapped state *is* the final
        # state — reuse its exact bytes, no offset arithmetic
        _send_done(conn, spec, step0, unwrapped0, fault_kind, safe_mode)
        return "done"

    last_hb = [now()]
    progress = {"gstep": step0}

    def callback(step: int, wrapped: np.ndarray,
                 unwrapped: np.ndarray) -> None:
        gstep = step0 + step
        progress["gstep"] = gstep
        if fault_kind == "kill" and gstep == fault_step:
            os.kill(os.getpid(), signal.SIGKILL)
        if fault_kind == "hang" and gstep >= fault_step:
            while True:  # no progress, no heartbeats: watchdog food
                time.sleep(0.05)
        if fault_kind == "slow" and gstep >= fault_step:
            time.sleep(slow_per_step)
        if gstep % spec.lambda_rpy == 0:
            if os.path.exists(ckpt_path):
                os.replace(ckpt_path, previous_checkpoint_path(ckpt_path))
                fsync_directory(checkpoint_dir)
            save_checkpoint(ckpt_path, wrapped, unwrapped,
                            gstep, integrator.rng)
            conn.send({"msg": "checkpoint", "task_id": spec.task_id,
                       "completed_step": gstep, "checkpoint": ckpt_path})
            last_hb[0] = now()
            if session is not None:
                session.flush()  # trace/metrics ride the same cadence
        elif now() - last_hb[0] >= heartbeat_interval:
            conn.send({"msg": "heartbeat", "task_id": spec.task_id,
                       "step": gstep})
            last_hb[0] = now()
            if session is not None:
                session.flush()

    def stop() -> bool:
        # drain only at block boundaries: a checkpoint was just
        # written there, so the resumed campaign stays bit-identical
        return (stop_event.is_set()
                and progress["gstep"] % spec.lambda_rpy == 0)

    final, stats = integrator.run(start, spec.n_steps - step0,
                                  callback=callback, stop=stop,
                                  unwrapped0=unwrapped0)
    gstep = step0 + stats.n_steps
    final_total = final
    if stats.stopped_early:
        conn.send({"msg": "drained", "task_id": spec.task_id,
                   "completed_step": gstep, "checkpoint": ckpt_path})
        return "drained"
    _send_done(conn, spec, gstep, final_total, fault_kind, safe_mode)
    return "done"


def _send_done(conn, spec: TaskSpec, completed_step: int,
               final_total: np.ndarray, fault_kind: str | None,
               safe_mode: bool) -> None:
    digest = positions_digest(final_total)
    payload = final_total
    if fault_kind == "corrupt":
        payload = _corrupt_payload(final_total)
    conn.send({"msg": "done", "task_id": spec.task_id,
               "completed_step": completed_step, "digest": digest,
               "positions": payload, "safe_mode": safe_mode})


def worker_main(conn, stop_event, worker_id: int) -> None:
    """Process target: serve task assignments until shutdown.

    Must stay importable at module top level (spawn start method).

    With the fork start method the child inherits the supervisor's
    process-global tracer/registry; those belong to the supervisor's
    track, so they are cleared immediately.  When an assignment
    carries an ``obs`` config the worker builds a (process-lifetime)
    :class:`~repro.obs.collect.SpoolingSession`: the metrics registry
    accumulates across tasks, each task gets a fresh tracer stamped
    with the spec's :class:`~repro.obs.collect.TraceContext`, and
    both are flushed to the campaign directory at the same
    heartbeat/checkpoint cadence as progress messages — so a SIGKILL
    loses at most one flush window.
    """
    # the supervisor owns shutdown signals; workers must not race it
    # by reacting to a terminal Ctrl-C delivered to the process group
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    set_tracer(None)
    set_metrics(None)
    session: SpoolingSession | None = None
    context = None  # process-lifetime execution context (first "exec")
    conn.send({"msg": "ready", "worker_id": worker_id})
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            if context is not None:
                context.close()
            return  # supervisor died; nothing left to report to
        if message.get("cmd") == "shutdown":
            if session is not None:
                session.close()
            if context is not None:
                context.close()
            return
        exec_config = message.get("exec")
        if exec_config is not None and context is None:
            # the supervisor already divided the machine between the
            # ensemble workers; this share is ours for the process life
            from ..exec import ExecutionContext
            context = ExecutionContext(backend=exec_config["backend"],
                                       workers=exec_config["workers"])
        spec = TaskSpec.from_json(message["spec"])
        obs_config = message.get("obs")
        if obs_config is not None and session is None:
            session = SpoolingSession(
                obs_config["spool_dir"], worker_id,
                trace=obs_config.get("trace", True),
                metrics=obs_config.get("metrics", True),
                trace_id=obs_config.get("trace_id"),
                max_events=obs_config.get("max_events", 1_000_000))
        if session is not None:
            session.begin_task(
                spec.task_id,
                trace_id=(spec.trace.trace_id if spec.trace is not None
                          else None))
        outcome = "failed"
        try:
            outcome = _run_task(
                conn, stop_event, spec,
                attempt=message["attempt"],
                fault=message.get("fault"),
                safe_mode=message.get("safe_mode", False),
                checkpoint_dir=message["checkpoint_dir"],
                slow_per_step=message.get("slow_per_step", 0.0),
                heartbeat_interval=message.get(
                    "heartbeat_interval", DEFAULT_HEARTBEAT_INTERVAL),
                session=session, context=context)
        except Exception as exc:  # noqa: RPR006 - worker boundary: the
            # failure is not swallowed, it crosses the process boundary
            # as a structured StepFailure report for the supervisor
            failure = StepFailure.from_exception(
                exc, attempt=message["attempt"])
            try:
                conn.send({"msg": "failed", "task_id": spec.task_id,
                           "failure": failure_report(
                               failure, message["attempt"])})
            except (OSError, BrokenPipeError):
                return
        finally:
            if session is not None:
                session.end_task(outcome)
