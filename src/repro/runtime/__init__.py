"""Supervised multi-process ensemble runtime.

The paper's production experiments (Fig. 3 diffusion statistics,
Fig. 8 scaling) average ensembles of independent BD trajectories.
This subpackage runs such an ensemble as a *campaign* on a supervised
pool of worker processes that survives worker crashes, hangs,
slowdowns and corrupted results:

* :mod:`~repro.runtime.tasks` — :class:`TaskSpec` / :class:`TaskRecord`
  and the resumable :class:`CampaignManifest`,
* :mod:`~repro.runtime.supervisor` — the :class:`Supervisor` event
  loop: heartbeat watchdog, deadlines, backoff retries, per-task
  circuit breakers, graceful drain,
* :mod:`~repro.runtime.worker` — the worker-process entry point
  (checkpointed stepping, heartbeats, fault execution),
* :mod:`~repro.runtime.faults` — deterministic *process-level* fault
  injection (:class:`ProcessFaultPlan`: kill/hang/slow/corrupt),
* :mod:`~repro.runtime.signals` — :class:`GracefulShutdown`, shared
  with ``repro simulate --max-wall-time``.

See ``docs/robustness.md`` ("Supervision tree") for the state machine
and protocol.
"""

from .faults import FAULT_KINDS, ProcessFault, ProcessFaultPlan
from .signals import GracefulShutdown
from .supervisor import Supervisor, SupervisorReport, WorkerRestart
from .tasks import (
    CampaignManifest,
    TaskRecord,
    TaskSpec,
    TaskState,
    make_ensemble,
    positions_digest,
)

__all__ = [
    "TaskSpec", "TaskRecord", "TaskState", "CampaignManifest",
    "make_ensemble", "positions_digest",
    "Supervisor", "SupervisorReport", "WorkerRestart",
    "ProcessFault", "ProcessFaultPlan", "FAULT_KINDS",
    "GracefulShutdown",
]
