"""Graceful-shutdown signal handling.

One small context manager shared by everything that must stop cleanly
on SIGTERM/SIGINT: ``repro simulate --max-wall-time`` (stop at the
next step boundary, write a final checkpoint, exit 0 resumable) and
the ensemble supervisor (stop assigning tasks, drain workers, persist
the campaign manifest).

The handler only *flags*; the owner polls :attr:`triggered` (the
integrator's ``stop`` predicate, the supervisor's event loop) so
shutdown always lands at a well-defined boundary rather than wherever
the signal interrupted NumPy.
"""

from __future__ import annotations

import signal
from typing import Callable

__all__ = ["GracefulShutdown"]

#: Signals that request a graceful drain.
_SHUTDOWN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class GracefulShutdown:
    """Context manager turning SIGTERM/SIGINT into a polled flag.

    Usage::

        with GracefulShutdown() as shutdown:
            sim.run(n_steps, stop=lambda: shutdown.triggered)
        if shutdown.triggered:
            ...   # exited at a step boundary; state is resumable

    A second signal while already draining is still absorbed (the
    handler stays installed until the ``with`` block exits), so an
    impatient ``kill`` repeated by an init system does not abort the
    final checkpoint write.  Original handlers are restored on exit.

    Instances are **nest-safe**: entering a second ``GracefulShutdown``
    inside an active one (the serve loop wrapping an inner ensemble
    drain) saves the outer handler and chains to it on delivery, so a
    single SIGTERM trips *every* level of the stack — the inner drain
    stops at its boundary and the outer loop still knows it must stop
    too.  Non-``GracefulShutdown`` previous handlers are restored but
    never invoked (the flag-only discipline stays intact).

    Parameters
    ----------
    on_signal:
        Optional callback invoked (once per delivery) from the signal
        handler with the signal name — used by the supervisor to log a
        "drain requested" instant event.  Keep it async-signal-safe
        cheap: set flags, don't do I/O beyond appending to a queue.
    """

    def __init__(self, on_signal: Callable[[str], None] | None = None):
        self.triggered = False
        #: Name of the first signal received (``"SIGTERM"``/``"SIGINT"``).
        self.signal_name: str | None = None
        self._on_signal = on_signal
        self._previous: dict[int, object] = {}

    def _handler(self, signum, frame) -> None:
        self.triggered = True
        if self.signal_name is None:
            self.signal_name = signal.Signals(signum).name
        if self._on_signal is not None:
            self._on_signal(signal.Signals(signum).name)
        # nest-safety: an enclosing GracefulShutdown must see the
        # signal too, or the outer loop would keep running after the
        # inner drain finished.  Only chain to our own kind — foreign
        # handlers expect to be *restored*, not invoked from here.
        previous = self._previous.get(signum)
        if (callable(previous) and isinstance(
                getattr(previous, "__self__", None), GracefulShutdown)):
            previous(signum, frame)

    def __enter__(self) -> "GracefulShutdown":
        for sig in _SHUTDOWN_SIGNALS:
            self._previous[sig] = signal.getsignal(sig)
            signal.signal(sig, self._handler)
        return self

    def __exit__(self, *exc) -> None:
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()
