"""Process-level fault injection for the supervised ensemble runtime.

PR 2's :mod:`repro.resilience.faults` injects *in-process* faults (NaN
forces, Lanczos non-convergence, checkpoint corruption).  This module
extends the same deterministic-schedule philosophy to the faults only
a multi-process campaign sees:

* ``kill``    — the worker dies with SIGKILL mid-task (node crash),
* ``hang``    — the worker stops making progress *and* stops
  heartbeating (deadlocked solver, stuck I/O),
* ``slow``    — the worker keeps heartbeating but each step takes far
  longer than budgeted (thermal throttling, a sick disk),
* ``corrupt`` — the worker finishes but returns a corrupted result
  payload (bad DIMM, truncated transfer).

A :class:`ProcessFaultPlan` assigns at most one fault per task, on the
task's *first* attempt only, from a seeded draw — so the same spec
always faults the same tasks at the same steps, every retry sees a
clean run, and the supervisor (which owns the plan) can reconcile
every planned fault against the supervision event it observed
(``kill`` → worker death, ``hang`` → heartbeat watchdog, ``slow`` →
deadline, ``corrupt`` → payload-digest mismatch).  The soak test
asserts this accounting is exhaustive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ProcessFault", "ProcessFaultPlan", "FAULT_KINDS"]

#: The four process-level fault kinds, and the supervision events each
#: is expected to surface as.
FAULT_KINDS = ("kill", "hang", "slow", "corrupt")

#: Supervisor failure reasons that legitimately account for each kind.
#: ``hang`` may surface as a deadline kill when the task deadline is
#: shorter than the heartbeat watchdog, and vice versa for ``slow``.
EXPECTED_OBSERVATIONS = {
    "kill": ("worker-death",),
    "hang": ("hang-timeout", "deadline"),
    "slow": ("deadline", "hang-timeout"),
    "corrupt": ("corrupt-result",),
}


@dataclass
class ProcessFault:
    """One planned process-level fault, and what became of it."""

    task_id: int
    kind: str
    #: Step (within the task) at which kill/hang/slow engage.
    at_step: int
    #: Supervisor failure reason that accounted for this fault
    #: (``None`` until observed).
    observed: str | None = None

    def accounted(self) -> bool:
        """True once the supervisor matched this fault to an event."""
        return self.observed in EXPECTED_OBSERVATIONS[self.kind]


@dataclass
class ProcessFaultPlan:
    """Deterministic assignment of process faults to campaign tasks.

    Parameters
    ----------
    seed:
        Seed of the task/step assignment draw.
    counts:
        Faults to inject per kind, e.g. ``{"kill": 2, "hang": 1}``.
        Each faulted task receives exactly one fault (on attempt 0);
        the total must not exceed the task count at assignment time.
    slow_per_step:
        Seconds of injected per-step delay for ``slow`` faults (the
        worker keeps heartbeating; the supervisor's deadline catches
        the slowdown).
    """

    seed: int = 0
    counts: dict[str, int] = field(default_factory=dict)
    slow_per_step: float = 0.1
    faults: list[ProcessFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        for kind, count in self.counts.items():
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown process fault kind {kind!r}; "
                    f"use one of {', '.join(FAULT_KINDS)}")
            if count < 0:
                raise ConfigurationError(
                    f"fault count must be >= 0, got {kind}={count}")

    def assign(self, task_ids: list[int],
               n_steps_of: dict[int, int]) -> list[ProcessFault]:
        """Assign the planned faults to concrete tasks and steps.

        Tasks are drawn without replacement from a seeded shuffle, so
        the assignment is a pure function of ``(seed, counts,
        task_ids)``.  Fault steps land in the middle half of each
        task's step range (late enough that a checkpoint usually
        exists, early enough that work remains to resume).
        """
        total = sum(self.counts.values())
        if total > len(task_ids):
            raise ConfigurationError(
                f"cannot inject {total} process faults into "
                f"{len(task_ids)} tasks (one fault per task)")
        rng = np.random.default_rng(self.seed)
        order = [task_ids[i] for i in rng.permutation(len(task_ids))]
        self.faults = []
        cursor = 0
        for kind in FAULT_KINDS:  # fixed kind order keeps the draw stable
            for _ in range(self.counts.get(kind, 0)):
                task_id = order[cursor]
                cursor += 1
                steps = n_steps_of[task_id]
                lo, hi = max(1, steps // 4), max(2, (3 * steps) // 4)
                at_step = int(rng.integers(lo, hi))
                self.faults.append(ProcessFault(task_id, kind, at_step))
        return self.faults

    def fault_for(self, task_id: int, attempt: int) -> ProcessFault | None:
        """The fault to inject into this assignment (attempt 0 only)."""
        if attempt != 0:
            return None
        for fault in self.faults:
            if fault.task_id == task_id:
                return fault
        return None

    def observe(self, task_id: int, reason: str) -> ProcessFault | None:
        """Record that a supervision event accounted for a fault."""
        for fault in self.faults:
            if fault.task_id == task_id and fault.observed is None:
                fault.observed = reason
                return fault
        return None

    def unaccounted(self) -> list[ProcessFault]:
        """Planned faults not (correctly) matched to an event yet."""
        return [f for f in self.faults if not f.accounted()]

    def to_spec(self) -> str:
        """Inverse of :meth:`from_spec` (campaign-manifest provenance)."""
        parts = [f"seed={self.seed}"]
        parts += [f"{kind}={count}" for kind, count in self.counts.items()]
        parts.append(f"slow-per-step={self.slow_per_step}")
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> ProcessFaultPlan:
        """Parse a CLI spec like ``"seed=7,kill=2,hang=1,slow=1,corrupt=1"``.

        Keys: ``seed`` (int), one count per fault kind, and
        ``slow-per-step`` (float seconds).
        """
        kwargs: dict = {"counts": {}}
        for item in filter(None, (s.strip() for s in spec.split(","))):
            try:
                key, value = item.split("=", 1)
            except ValueError:
                raise ConfigurationError(
                    f"malformed --inject-faults item {item!r}; "
                    "expected key=value") from None
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "slow-per-step":
                kwargs["slow_per_step"] = float(value)
            elif key in FAULT_KINDS:
                kwargs["counts"][key] = int(value)
            else:
                raise ConfigurationError(
                    f"unknown --inject-faults key {key!r}; use seed, "
                    f"slow-per-step or {', '.join(FAULT_KINDS)}")
        return cls(**kwargs)
