"""Block Lanczos approximation of ``M^(1/2) Z`` for a block of vectors.

Algorithm 2 needs ``lambda_RPY`` Brownian displacement vectors per
mobility update (line 6: ``D = Krylov(PME, Z)``).  The block Krylov
method computes them together, which (a) converges in fewer iterations
per vector than the single-vector method and (b) turns every operator
application into a block (multi-RHS) product — the efficient kernel of
paper reference [24] (Section III.B).

After ``m`` block steps with ``Z = V_1 R_1`` (thin QR), the band
block-tridiagonal ``T_m = V^T M V`` (blocks ``A_j`` on the diagonal,
``B_j`` below) gives

    M^(1/2) Z  ~  V_m  T_m^(1/2)  E_1 R_1

with ``E_1`` the first block column of the identity.  The stopping
criterion is the Frobenius-norm relative update, matching the paper's
``e_k``.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.linalg

from .. import obs
from ..errors import ConvergenceError
from ..lint.contracts import array_arg
from .lanczos import LanczosInfo

__all__ = ["block_lanczos_sqrt"]


def _block_tridiag_sqrt_first(blocks_a: list[np.ndarray],
                              blocks_b: list[np.ndarray],
                              s: int) -> np.ndarray:
    """``T^(1/2) E_1`` for the block tridiagonal ``T`` (first ``s`` columns)."""
    m = len(blocks_a)
    t = np.zeros((m * s, m * s))
    for j, a in enumerate(blocks_a):
        t[j * s:(j + 1) * s, j * s:(j + 1) * s] = a
    for j, b in enumerate(blocks_b):
        t[(j + 1) * s:(j + 2) * s, j * s:(j + 1) * s] = b
        t[j * s:(j + 1) * s, (j + 1) * s:(j + 2) * s] = b.T
    w, q = scipy.linalg.eigh(t)
    w = np.sqrt(np.clip(w, 0.0, None))
    return (q * w) @ q[:s].T  # (m s, s)


@array_arg("z", ndim=(2,))
def block_lanczos_sqrt(matvec: Any, z: np.ndarray, tol: float = 1e-2,
                       max_iter: int = 200, reorthogonalize: bool = True
                       ) -> tuple[np.ndarray, LanczosInfo]:
    """Approximate ``M^(1/2) Z`` for a block ``Z`` of shape ``(d, s)``.

    Parameters mirror :func:`repro.krylov.lanczos.lanczos_sqrt`.
    ``matvec`` may be a :class:`~repro.core.mobility.MobilityOperator`
    (preferred — each iteration issues **one** batched
    ``apply_block``), a dense matrix, or a legacy ``matvec`` callable
    (wrapped via :func:`~repro.core.mobility.as_mobility`; callables
    that accept column blocks keep their block behaviour).  Returns
    ``(Y, info)`` with ``Y`` of shape ``(d, s)``.

    Rank deficiency of a new block (an invariant subspace) terminates
    the expansion; the current iterate is then exact on the subspace
    explored and is returned if the tolerance is met, otherwise a
    :class:`~repro.errors.ConvergenceError` is raised.  The error
    carries the best partial iterate and the full solve diagnostics
    (``iterations``, ``rel_change``/``residual``, ``n_matvecs``) so a
    recovery policy can degrade instead of discarding the work.
    """
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 2:
        raise ValueError(f"Z must have shape (d, s), got {z.shape}")
    d, s = z.shape
    if s == 0 or not np.any(z):
        return np.zeros_like(z), LanczosInfo(0, True, 0.0, 0)
    if s > d:
        raise ValueError(f"block size {s} exceeds dimension {d}")

    from ..core.mobility import as_mobility  # deferred: import cycle
    operator = as_mobility(matvec, dim=d)
    v1, r1 = np.linalg.qr(z)           # Z = V_1 R_1
    max_iter = min(max_iter, d // s)
    basis = [v1]
    blocks_a: list[np.ndarray] = []
    blocks_b: list[np.ndarray] = []
    y_prev: np.ndarray | None = None
    y_acc = np.empty((d, s))           # per-iteration iterate workspace
    rel_change = np.inf
    n_matvecs = 0

    def _finish(info: LanczosInfo) -> LanczosInfo:
        obs.record_solver("block_lanczos", info.iterations, info.converged,
                          info.rel_change, info.n_matvecs)
        return info

    with obs.span("krylov.block_lanczos", d=d, s=s, tol=tol):
        for m in range(1, max_iter + 1):
            v = basis[-1]
            # one batched multi-RHS application per iteration
            w = np.asarray(operator.apply_block(v), dtype=np.float64)
            n_matvecs += s
            a = v.T @ w
            a = 0.5 * (a + a.T)        # symmetrize against round-off
            blocks_a.append(a)
            w = w - v @ a
            if m > 1:
                w = w - basis[-2] @ blocks_b[-1].T
            if reorthogonalize:
                for vb in basis:
                    w -= vb @ (vb.T @ w)

            # iterate + convergence check (cheap next to the block matvec)
            coeffs = _block_tridiag_sqrt_first(blocks_a, blocks_b, s)
            y_acc.fill(0.0)
            for j, vb in enumerate(basis):
                y_acc += vb @ coeffs[j * s:(j + 1) * s]
            y = y_acc @ r1
            if y_prev is not None:
                denom = float(np.linalg.norm(y))
                rel_change = (float(np.linalg.norm(y - y_prev)) / denom
                              if denom > 0 else 0.0)
                if rel_change < tol:
                    return y, _finish(
                        LanczosInfo(m, True, rel_change, n_matvecs))
            y_prev = y

            v_next, b = np.linalg.qr(w)
            if np.min(np.abs(np.diag(b))) <= 1e-12 * max(1.0, abs(b[0, 0])):
                # invariant subspace: iterate is exact
                return y, _finish(LanczosInfo(m, True, 0.0, n_matvecs))
            blocks_b.append(b)
            basis.append(v_next)

        _finish(LanczosInfo(max_iter, False, rel_change, n_matvecs))
        raise ConvergenceError(
            f"block Lanczos did not reach tol={tol} in {max_iter} "
            f"iterations",
            iterations=max_iter, residual=rel_change, best_iterate=y_prev,
            n_matvecs=n_matvecs)
