"""Krylov-subspace computation of Brownian displacements.

The canonical way to sample ``g ~ N(0, 2 kT dt M)`` is ``g = sqrt(2 kT
dt) S z`` with ``S`` the Cholesky factor of the mobility matrix — which
requires ``M`` explicitly.  With the matrix-free PME operator the paper
instead uses the Krylov (Lanczos) method of Ando, Chow, Saad & Skolnick
(J. Chem. Phys. 137, 064106 (2012); paper reference [8]): after ``m``
Lanczos steps with starting vector ``z``,

    M^(1/2) z  ~  ||z|| V_m T_m^(1/2) e_1

Any square root of the covariance gives correctly distributed samples;
Lanczos converges to the *principal* square root action, which is what
the tests compare against.

Because Algorithm 2 generates ``lambda_RPY`` displacement vectors per
mobility update, the *block* Lanczos variant processes all of them
simultaneously — fewer iterations per vector and block (multi-RHS)
SpMV/PME applications (paper Section III.B).

Modules:

* :mod:`~repro.krylov.lanczos` -- single-vector Lanczos square root,
* :mod:`~repro.krylov.block_lanczos` -- the block version,
* :mod:`~repro.krylov.reference` -- dense references (eigendecomposition
  square root, Cholesky sampling).
"""

from .lanczos import lanczos_sqrt, LanczosInfo
from .block_lanczos import block_lanczos_sqrt
from .chebyshev import chebyshev_sqrt, eigenvalue_bounds
from .reference import dense_sqrt_apply, cholesky_displacements, dense_sqrtm
from .resistance import solve_resistance

__all__ = [
    "lanczos_sqrt",
    "block_lanczos_sqrt",
    "chebyshev_sqrt",
    "eigenvalue_bounds",
    "solve_resistance",
    "LanczosInfo",
    "dense_sqrt_apply",
    "cholesky_displacements",
    "dense_sqrtm",
]
