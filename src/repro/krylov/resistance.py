"""The resistance problem: solve ``M f = u`` matrix-free.

The mobility problem (``u = M f``) is what BD needs every step, but
many analyses need the inverse map — the forces that produce given
velocities (e.g. holding particles at prescribed speeds, or computing
drag on a frozen cluster).  With the dense algorithm this is a linear
solve against the ``3n x 3n`` matrix; matrix-free it becomes conjugate
gradients on the SPD PME operator, converging in a spectrum-dependent
number of PME applications.

This is functionality the paper's conclusion gestures at ("extend the
functionality of the BD simulation code"); it reuses the exact
operator Algorithm 2 already builds.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.sparse.linalg import LinearOperator, cg

from ..errors import ConvergenceError
from .lanczos import LanczosInfo

__all__ = ["solve_resistance"]


def solve_resistance(matvec: Callable[[np.ndarray], np.ndarray],
                     velocities: np.ndarray, tol: float = 1e-8,
                     max_iter: int = 1000
                     ) -> tuple[np.ndarray, LanczosInfo]:
    """Forces satisfying ``M f = u`` via conjugate gradients.

    Parameters
    ----------
    matvec:
        SPD mobility: a :class:`~repro.core.mobility.MobilityOperator`,
        a dense matrix, or a legacy ``matvec`` callable.
    velocities:
        Target velocities, shape ``(d,)`` or ``(d, s)`` (each column
        solved independently).
    tol:
        Relative residual tolerance of the CG solve.
    max_iter:
        Iteration cap per column.

    Returns
    -------
    (forces, info):
        The force vector/block, and diagnostics with the *total*
        operator applications across columns.
    """
    u = np.asarray(velocities, dtype=np.float64)
    flat = u.ndim == 1
    ub = u[:, None] if flat else u
    d, s = ub.shape
    from ..core.mobility import as_mobility  # deferred: import cycle
    operator = as_mobility(matvec, dim=d)

    n_matvecs = 0

    def counted(v):
        nonlocal n_matvecs
        n_matvecs += 1
        return operator.apply(v)

    op = LinearOperator((d, d), matvec=counted, dtype=np.float64)
    out = np.empty_like(ub)
    worst_iters = 0
    for c in range(s):
        before = n_matvecs
        f, status = cg(op, ub[:, c], rtol=tol, maxiter=max_iter)
        if status != 0:
            raise ConvergenceError(
                f"CG did not reach tol={tol} in {max_iter} iterations "
                f"(column {c})", iterations=max_iter)
        out[:, c] = f
        worst_iters = max(worst_iters, n_matvecs - before)
    info = LanczosInfo(iterations=worst_iters, converged=True,
                       rel_change=tol, n_matvecs=n_matvecs)
    return (out[:, 0] if flat else out), info
