"""Dense reference methods for Brownian displacement generation.

These are the *conventional* algorithms the paper's Algorithm 1 uses
(Cholesky factorization, Section II.C) plus the eigendecomposition
square root used as the ground truth for the Krylov solvers in tests.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..errors import NotPositiveDefiniteError

__all__ = ["dense_sqrtm", "dense_sqrt_apply", "cholesky_displacements"]


def dense_sqrtm(matrix: np.ndarray, floor: float = 0.0) -> np.ndarray:
    """Principal square root of a symmetric positive (semi-)definite matrix.

    Uses a symmetric eigendecomposition; eigenvalues below ``-1e-10 *
    max(eig)`` raise :class:`~repro.errors.NotPositiveDefiniteError`,
    smaller negative values (round-off) are clipped to ``floor``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    w, v = scipy.linalg.eigh(matrix)
    if w[-1] <= 0:
        raise NotPositiveDefiniteError("matrix has no positive eigenvalues")
    if w[0] < -1e-10 * w[-1]:
        raise NotPositiveDefiniteError(
            f"matrix is not positive semi-definite (min eig {w[0]:.3e})")
    w = np.sqrt(np.clip(w, floor, None))
    return (v * w) @ v.T


def dense_sqrt_apply(matrix: np.ndarray, z: np.ndarray) -> np.ndarray:
    """``M^(1/2) z`` via the dense principal square root (reference)."""
    return dense_sqrtm(matrix) @ np.asarray(z, dtype=np.float64)


def cholesky_displacements(matrix: np.ndarray, z: np.ndarray,
                           scale: float = 1.0) -> np.ndarray:
    """Brownian displacements via Cholesky: ``scale * S z`` with ``M = S S^T``.

    This is the paper's Eq. in Section II.C
    (``g = sqrt(2 kT dt) S z``); pass ``scale = sqrt(2 kT dt)``.
    ``z`` may be a single vector ``(3n,)`` or a block ``(3n, s)``.

    Raises
    ------
    NotPositiveDefiniteError
        If the Cholesky factorization fails.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    try:
        s = np.linalg.cholesky(matrix)
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            f"Cholesky factorization failed: {exc}") from exc
    return scale * (s @ np.asarray(z, dtype=np.float64))
