"""Chebyshev-polynomial Brownian displacements (Fixman's method).

The alternative matrix-free square root the paper mentions
(Section III.B, reference [25], Fixman 1986): approximate ``sqrt(x)``
on the spectral interval ``[l_min, l_max]`` of the SPD mobility by a
Chebyshev polynomial ``p_m`` and evaluate ``p_m(M) z`` with the
three-term recurrence — only matrix-vector products are needed, plus
*eigenvalue estimates*, which is the method's practical drawback
compared with Lanczos (the Krylov iteration adapts to the spectrum
automatically).

Implemented here for the ablation benchmark comparing the two methods
(``benchmarks/bench_ablation_brownian.py``):

* :func:`eigenvalue_bounds` — extremal Ritz values from a short
  Lanczos run, padded by safety factors,
* :func:`chebyshev_coefficients` — expansion of ``sqrt`` on the
  interval (computed at Chebyshev nodes; degree chosen adaptively from
  the *scalar* sup-norm error, which bounds the matrix-function error
  on the spectral interval),
* :func:`chebyshev_sqrt` — the vector evaluation (works on blocks,
  amortizing the polynomial across all ``lambda_RPY`` vectors).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .. import obs
from ..errors import ConvergenceError
from .lanczos import LanczosInfo

__all__ = ["eigenvalue_bounds", "chebyshev_coefficients", "chebyshev_sqrt"]


def eigenvalue_bounds(matvec: Callable[[np.ndarray], np.ndarray], dim: int,
                      n_iter: int = 25, safety: float = 1.05,
                      seed: int | np.random.Generator = 0
                      ) -> tuple[float, float]:
    """Estimated spectral interval ``[l_min, l_max]`` of an SPD operator.

    Runs ``n_iter`` Lanczos steps from a random vector and returns the
    extremal Ritz values widened by ``safety`` (Ritz values always lie
    inside the true spectrum).

    Parameters
    ----------
    matvec:
        The operator application.
    dim:
        Operator dimension.
    n_iter:
        Lanczos steps (25 is ample for the RPY spectra of interest).
    safety:
        Multiplicative widening of both ends.
    seed:
        RNG seed or generator for the starting vector.
    """
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    from ..core.mobility import as_mobility  # deferred: import cycle
    operator = as_mobility(matvec, dim=dim)
    n_iter = min(n_iter, dim)
    v = rng.standard_normal(dim)
    v /= np.linalg.norm(v)
    basis = [v]
    alpha: list[float] = []
    beta: list[float] = []
    with obs.span("krylov.bounds", d=dim, n_iter=n_iter):
        for m in range(n_iter):
            w = np.array(operator.apply(basis[-1]), dtype=np.float64,
                         copy=True)
            a = float(basis[-1] @ w)
            alpha.append(a)
            w -= a * basis[-1]
            if m > 0:
                w -= beta[-1] * basis[-2]
            for vb in basis:                   # full reorthogonalization
                w -= (vb @ w) * vb
            b = float(np.linalg.norm(w))
            if b < 1e-12:
                break
            beta.append(b)
            basis.append(w / b)
    import scipy.linalg
    ritz = scipy.linalg.eigvalsh_tridiagonal(
        np.array(alpha), np.array(beta[: len(alpha) - 1]))
    l_min = float(ritz[0]) / safety
    l_max = float(ritz[-1]) * safety
    if l_min <= 0:
        raise ConvergenceError(
            f"operator does not look positive definite (Ritz min {ritz[0]})")
    return l_min, l_max


def _best_coefficients(l_min: float, l_max: float, tol: float,
                       max_degree: int) -> tuple[np.ndarray, float, bool]:
    """Grow the expansion; return ``(c, err, converged)``.

    When even ``max_degree`` misses ``tol``, the highest-degree
    coefficients are returned with ``converged=False`` so callers can
    degrade to the best available polynomial instead of discarding it.
    """
    if not (0 < l_min < l_max):
        raise ValueError(f"need 0 < l_min < l_max, got [{l_min}, {l_max}]")
    probe = l_min + (l_max - l_min) * 0.5 * (
        1 - np.cos(np.linspace(0, np.pi, 513)))
    sqrt_probe = np.sqrt(probe)
    degree = 8
    c = np.zeros(1)
    err = np.inf
    t = (2 * probe - (l_max + l_min)) / (l_max - l_min)
    while degree <= max_degree:
        nodes = np.cos((np.arange(degree + 1) + 0.5) * np.pi / (degree + 1))
        x = 0.5 * (l_max - l_min) * nodes + 0.5 * (l_max + l_min)
        fx = np.sqrt(x)
        k = np.arange(degree + 1)
        theta = (np.arange(degree + 1) + 0.5) * np.pi / (degree + 1)
        c = (2.0 / (degree + 1)) * (np.cos(np.outer(k, theta)) * fx).sum(axis=1)
        # evaluate on the probe grid via Clenshaw; scalar zero seeds
        # broadcast to the grid on the first recurrence step
        b1, b2 = 0.0, 0.0
        for ck in c[:0:-1]:
            b1, b2 = 2 * t * b1 - b2 + ck, b1
        approx = t * b1 - b2 + 0.5 * c[0]
        err = float(np.max(np.abs(approx - sqrt_probe) / sqrt_probe))
        if err < tol:
            return c, err, True
        degree *= 2
    return c, err, False


def chebyshev_coefficients(l_min: float, l_max: float, tol: float = 1e-3,
                           max_degree: int = 512
                           ) -> np.ndarray:
    """Chebyshev coefficients of ``sqrt`` on ``[l_min, l_max]``.

    The degree is grown (doubling) until the sampled relative sup-norm
    error of the polynomial against ``sqrt`` on the interval is below
    ``tol`` — since ``M`` is SPD with spectrum inside the interval, the
    same bound holds for ``||p(M) - M^(1/2)||_2``.

    Returns the coefficient array ``c`` with
    ``p(x) = c_0/2 + sum_{k>=1} c_k T_k(t(x))``.
    """
    c, err, converged = _best_coefficients(l_min, l_max, tol, max_degree)
    if not converged:
        raise ConvergenceError(
            f"Chebyshev degree {max_degree} insufficient for tol={tol} on "
            f"[{l_min:.3g}, {l_max:.3g}] (condition {l_max / l_min:.3g})",
            iterations=c.size - 1, residual=err)
    return c


def chebyshev_sqrt(matvec: Callable[[np.ndarray], np.ndarray],
                   z: np.ndarray, l_min: float, l_max: float,
                   tol: float = 1e-3, max_degree: int = 512
                   ) -> tuple[np.ndarray, LanczosInfo]:
    """Approximate ``M^(1/2) z`` with a Chebyshev polynomial of ``M``.

    ``z`` may be a vector ``(d,)`` or a block ``(d, s)``; the
    recurrence is applied to the whole block at once (one polynomial
    serves every vector — Fixman's amortization).

    Returns ``(y, info)`` with ``info.iterations`` the polynomial
    degree and ``info.n_matvecs`` counted per column.

    If the ``max_degree`` cap cannot reach ``tol``, the best available
    polynomial is still evaluated and the raised
    :class:`~repro.errors.ConvergenceError` carries that evaluation as
    ``best_iterate`` (plus ``residual`` and ``n_matvecs``) so recovery
    policies can degrade to it instead of discarding the work.
    """
    z = np.asarray(z, dtype=np.float64)
    flat = z.ndim == 1
    zb = z[:, None] if flat else z
    from ..core.mobility import as_mobility  # deferred: import cycle
    operator = as_mobility(matvec, dim=int(zb.shape[0]))
    c, err, converged = _best_coefficients(l_min, l_max, tol, max_degree)
    degree = c.size - 1
    s = zb.shape[1]

    scale = 2.0 / (l_max - l_min)
    shift = (l_max + l_min) / (l_max - l_min)

    def t_apply(v):
        """Application of the scaled operator ``t(M) = scale M - shift``
        — one batched multi-RHS product for the whole block."""
        return scale * np.asarray(operator.apply_block(v)) - shift * v

    # Clenshaw recurrence on the block
    b1 = np.zeros_like(zb)
    b2 = np.zeros_like(zb)
    n_matvecs = 0
    with obs.span("krylov.chebyshev", d=int(zb.shape[0]), s=s,
                  degree=degree):
        for ck in c[:0:-1]:
            b1, b2 = 2.0 * t_apply(b1) - b2 + ck * zb, b1
            n_matvecs += s
        y = t_apply(b1) - b2 + 0.5 * c[0] * zb
        n_matvecs += s
    obs.record_solver("chebyshev", degree, converged, err, n_matvecs)
    if not converged:
        raise ConvergenceError(
            f"Chebyshev degree {max_degree} insufficient for tol={tol} on "
            f"[{l_min:.3g}, {l_max:.3g}] (condition {l_max / l_min:.3g})",
            iterations=degree, residual=err,
            best_iterate=(y[:, 0] if flat else y), n_matvecs=n_matvecs)
    info = LanczosInfo(iterations=degree, converged=converged,
                       rel_change=tol, n_matvecs=n_matvecs)
    return (y[:, 0] if flat else y), info
