"""Single-vector Lanczos approximation of ``M^(1/2) z``.

The method of Ando, Chow, Saad & Skolnick (paper reference [8]): run
``m`` steps of the symmetric Lanczos process on the SPD operator ``M``
with starting vector ``z``, yielding an orthonormal basis ``V_m`` and a
tridiagonal ``T_m = V_m^T M V_m``; then

    y_m = ||z|| V_m T_m^(1/2) e_1

converges rapidly to ``M^(1/2) z`` (error governed by the square root's
polynomial approximation on the spectrum).  The iteration stops when
the relative update ``||y_m - y_{m-1}|| / ||y_m||`` falls below the
tolerance ``e_k`` — the quantity the paper's Table II varies.

Full reorthogonalization is applied by default: for the modest
iteration counts the paper reports (19-25) its ``O(m^2 n)`` cost is
negligible next to the PME applications and it removes the classical
loss-of-orthogonality failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.linalg

from .. import obs
from ..errors import ConvergenceError
from ..lint.contracts import array_arg

__all__ = ["lanczos_sqrt", "LanczosInfo"]


@dataclass
class LanczosInfo:
    """Diagnostics of a (block) Lanczos solve.

    Attributes
    ----------
    iterations:
        Number of Lanczos steps performed.
    converged:
        Whether the relative-update criterion was met.
    rel_change:
        Last relative update of the iterate.
    n_matvecs:
        Number of operator applications, counted per column.
    """

    iterations: int
    converged: bool
    rel_change: float
    n_matvecs: int


def _tridiag_sqrt_e1(alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """First column of ``T^(1/2)`` for the Lanczos tridiagonal ``T``.

    Small negative Ritz values (round-off from an SPD operator) are
    clipped to zero.
    """
    w, q = scipy.linalg.eigh_tridiagonal(alpha, beta)
    w = np.sqrt(np.clip(w, 0.0, None))
    return (q * w) @ q[0]


@array_arg("z", ndim=(1,))
def lanczos_sqrt(matvec: Callable[[np.ndarray], np.ndarray], z: np.ndarray,
                 tol: float = 1e-2, max_iter: int = 200,
                 reorthogonalize: bool = True,
                 check_interval: int = 1) -> tuple[np.ndarray, LanczosInfo]:
    """Approximate ``M^(1/2) z`` using only products ``f -> M f``.

    Parameters
    ----------
    matvec:
        The SPD operator: a :class:`~repro.core.mobility.MobilityOperator`,
        a dense matrix, or a legacy ``matvec`` callable (normalized via
        :func:`~repro.core.mobility.as_mobility`).
    z:
        Starting vector, shape ``(d,)``.
    tol:
        Relative-update stopping tolerance (the paper's ``e_k``).
    max_iter:
        Maximum Lanczos steps; exceeding it raises
        :class:`~repro.errors.ConvergenceError`.
    reorthogonalize:
        Re-orthogonalize each new basis vector against the full basis.
    check_interval:
        Evaluate the iterate (an ``O(m^2)`` eigen-solve plus an
        ``O(m d)`` basis combination) every this many steps.

    Returns
    -------
    (y, info):
        The approximation to ``M^(1/2) z`` and solve diagnostics.
    """
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 1:
        raise ValueError(f"z must be a vector, got shape {z.shape}")
    norm_z = float(np.linalg.norm(z))
    if norm_z == 0.0:
        return np.zeros_like(z), LanczosInfo(0, True, 0.0, 0)

    d = z.shape[0]
    from ..core.mobility import as_mobility  # deferred: import cycle
    operator = as_mobility(matvec, dim=d)
    max_iter = min(max_iter, d)
    basis = np.empty((max_iter + 1, d))
    basis[0] = z / norm_z
    alpha: list[float] = []
    beta: list[float] = []
    y_prev: np.ndarray | None = None
    rel_change = np.inf
    n_matvecs = 0

    def _finish(info: LanczosInfo) -> LanczosInfo:
        obs.record_solver("lanczos", info.iterations, info.converged,
                          info.rel_change, info.n_matvecs)
        return info

    with obs.span("krylov.lanczos", d=d, tol=tol):
        for m in range(1, max_iter + 1):
            v = basis[m - 1]
            # copy: a matvec may return its input (e.g. the identity),
            # and w is updated in place below
            w = np.array(operator.apply(v), dtype=np.float64, copy=True)
            n_matvecs += 1
            a = float(v @ w)
            alpha.append(a)
            w -= a * v
            if m > 1:
                w -= beta[-1] * basis[m - 2]
            if reorthogonalize:
                # one pass of classical Gram-Schmidt against the basis
                w -= basis[:m].T @ (basis[:m] @ w)
            b = float(np.linalg.norm(w))

            if (m % check_interval == 0 or b <= 1e-14 * norm_z
                    or m == max_iter):
                coeffs = _tridiag_sqrt_e1(np.array(alpha), np.array(beta))
                y = norm_z * (coeffs @ basis[:m])
                if y_prev is not None:
                    denom = float(np.linalg.norm(y))
                    rel_change = (float(np.linalg.norm(y - y_prev)) / denom
                                  if denom > 0 else 0.0)
                    if rel_change < tol:
                        return y, _finish(
                            LanczosInfo(m, True, rel_change, n_matvecs))
                y_prev = y

            if b <= 1e-14 * norm_z:
                # invariant subspace found: the iterate is exact
                return y_prev, _finish(
                    LanczosInfo(m, True, 0.0, n_matvecs))
            beta.append(b)
            basis[m] = w / b

        _finish(LanczosInfo(max_iter, False, rel_change, n_matvecs))
        raise ConvergenceError(
            f"Lanczos did not reach tol={tol} in {max_iter} iterations",
            iterations=max_iter, residual=rel_change, best_iterate=y_prev,
            n_matvecs=n_matvecs)
