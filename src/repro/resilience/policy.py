"""Recovery policies and the structured recovery log.

A :class:`RecoveryPolicy` is a bag of knobs describing *how hard* the
simulation runtime should try to keep a run alive before giving up:

* the Lanczos retry schedule (grow ``max_iter``, loosen then re-tighten
  ``tol``),
* whether to fall through to the Chebyshev and dense-Cholesky
  reference methods,
* the time-step backoff used for non-finite states,
* how many block rollbacks to tolerate before aborting.

Every action the runtime takes is recorded as a :class:`RecoveryEvent`
in a :class:`RecoveryLog`, which is returned with the run statistics so
a production service (or the fault-injection soak test) can account for
every recovery after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .. import obs
from ..errors import ConfigurationError
from .failures import FailureKind

__all__ = ["RecoveryPolicy", "RecoveryEvent", "RecoveryLog"]


@dataclass
class RecoveryPolicy:
    """Knobs of the retry/backoff/degrade ladder.

    Attributes
    ----------
    lanczos_retries:
        Number of Lanczos retries after the first failure.  Retry ``i``
        multiplies ``max_iter`` by ``lanczos_iter_growth ** (i+1)``;
        the first retry also loosens ``tol`` by ``lanczos_tol_loosen``
        and later retries tighten back to the original tolerance
        (looser-then-tighter: grab *a* usable sample fast, then try to
        restore full accuracy with the enlarged iteration budget).
    lanczos_iter_growth:
        Multiplicative ``max_iter`` growth per retry.
    lanczos_tol_loosen:
        Tolerance loosening factor of the first retry.
    accept_partial_rel_change:
        If all retries fail but the best partial iterate reached a
        relative change below this threshold, accept it instead of
        escalating (``None`` disables).
    chebyshev_fallback:
        Fall back to the Chebyshev (Fixman) square root when Lanczos is
        exhausted.
    chebyshev_bound_iterations:
        Lanczos steps used to estimate the spectral interval for the
        Chebyshev fallback.
    cholesky_fallback:
        Final rung: materialize the dense mobility and use the
        Cholesky / eigendecomposition reference square root.  ``O(n^2)``
        memory — intended as a last resort for modest ``n``.
    dense_fallback_max_dim:
        Refuse the dense fallback above this operator dimension
        (``3n``); prevents an accidental 500k-particle densification.
    max_step_attempts:
        Attempts per inner step (first try + dt-backoff retries) before
        escalating to a block rollback.
    dt_backoff_factor:
        Time-step scale factor applied on a rejected (non-finite) step.
    dt_recovery_steps:
        Clean steps after which a backed-off ``dt`` is doubled back
        towards its nominal value.
    min_dt_scale:
        Lower bound of the cumulative ``dt`` scale; reaching it
        escalates instead of halving further.
    max_rollbacks:
        Block rollbacks (restore positions + RNG to the last mobility
        rebuild) tolerated per ``run`` call before the failure is
        re-raised.
    """

    lanczos_retries: int = 2
    lanczos_iter_growth: float = 4.0
    lanczos_tol_loosen: float = 10.0
    accept_partial_rel_change: float | None = None
    chebyshev_fallback: bool = True
    chebyshev_bound_iterations: int = 25
    cholesky_fallback: bool = True
    dense_fallback_max_dim: int = 6000
    max_step_attempts: int = 3
    dt_backoff_factor: float = 0.5
    dt_recovery_steps: int = 10
    min_dt_scale: float = 1.0 / 64.0
    max_rollbacks: int = 3

    def __post_init__(self) -> None:
        if self.lanczos_retries < 0:
            raise ConfigurationError(
                f"lanczos_retries must be >= 0, got {self.lanczos_retries}")
        if self.lanczos_iter_growth < 1.0:
            raise ConfigurationError(
                f"lanczos_iter_growth must be >= 1, got "
                f"{self.lanczos_iter_growth}")
        if not 0.0 < self.dt_backoff_factor < 1.0:
            raise ConfigurationError(
                f"dt_backoff_factor must be in (0, 1), got "
                f"{self.dt_backoff_factor}")
        if self.max_step_attempts < 1:
            raise ConfigurationError(
                f"max_step_attempts must be >= 1, got "
                f"{self.max_step_attempts}")
        if self.dt_recovery_steps < 1:
            raise ConfigurationError(
                f"dt_recovery_steps must be >= 1, got "
                f"{self.dt_recovery_steps}")
        if self.max_rollbacks < 0:
            raise ConfigurationError(
                f"max_rollbacks must be >= 0, got {self.max_rollbacks}")

    def lanczos_retry_schedule(self, tol: float, max_iter: int
                               ) -> list[tuple[float, int]]:
        """The ``(tol, max_iter)`` pairs of the retry ladder."""
        schedule = []
        for i in range(self.lanczos_retries):
            grown = max(int(max_iter * self.lanczos_iter_growth ** (i + 1)),
                        max_iter + 1)
            loosened = tol * self.lanczos_tol_loosen if i == 0 else tol
            schedule.append((loosened, grown))
        return schedule


@dataclass
class RecoveryEvent:
    """One recorded recovery action.

    ``action`` is one of: ``detect`` (a failure was observed),
    ``retry-lanczos``, ``accept-partial``, ``fallback-chebyshev``,
    ``fallback-cholesky``, ``fallback-eigh``, ``dt-backoff``,
    ``restore-dt``, ``rollback``, ``checkpoint-fallback``, or a
    fault-injection marker (``inject-*``) from the test harness.
    """

    step: int
    kind: FailureKind
    action: str
    attempt: int = 0
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class RecoveryLog:
    """Append-only record of every failure seen and action taken."""

    events: list[RecoveryEvent] = field(default_factory=list)

    def record(self, step: int, kind: FailureKind, action: str,
               attempt: int = 0, **detail: Any) -> RecoveryEvent:
        """Append and return a new :class:`RecoveryEvent`.

        Every event is mirrored to the observability layer (when
        enabled) as an instant trace event ``recovery.<action>`` and a
        ``recovery_events_total{action,kind}`` counter increment — this
        method is the single chokepoint all recovery actions flow
        through.
        """
        event = RecoveryEvent(step=step, kind=kind, action=action,
                              attempt=attempt, detail=detail)
        self.events.append(event)
        obs.instant(f"recovery.{action}", kind=kind.value, step=step,
                    attempt=attempt)
        obs.inc("recovery_events_total", action=action, kind=kind.value)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def count(self, action: str | None = None,
              kind: FailureKind | str | None = None) -> int:
        """Number of events matching ``action`` and/or ``kind``."""
        kind = FailureKind(kind) if kind is not None else None
        return sum(1 for e in self.events
                   if (action is None or e.action == action)
                   and (kind is None or e.kind == kind))

    @property
    def failures(self) -> list[RecoveryEvent]:
        """The ``detect`` events (one per observed failure)."""
        return [e for e in self.events if e.action == "detect"]

    def summary(self) -> str:
        """One line per distinct ``(kind, action)`` with counts."""
        if not self.events:
            return "no recovery events"
        tally: dict[tuple[str, str], int] = {}
        for e in self.events:
            key = (e.kind.value, e.action)
            tally[key] = tally.get(key, 0) + 1
        return "\n".join(f"{kind:<24} {action:<20} x{count}"
                         for (kind, action), count in sorted(tally.items()))
