"""The retry/degrade ladder for Brownian displacement generation.

Fiore et al. (PAPERS.md) observe that iterative square-root methods
degrade as particles approach overlap — the mobility spectrum widens
and (block) Lanczos needs more iterations than the configured budget.
Instead of aborting a 10-hour run, the ladder implemented here walks
down a configurable sequence of increasingly robust (and increasingly
expensive) methods:

1. retry Lanczos with a grown ``max_iter`` and a looser-then-tighter
   tolerance (:meth:`RecoveryPolicy.lanczos_retry_schedule`),
2. optionally accept the best partial iterate if it got close enough,
3. fall back to the Chebyshev (Fixman) polynomial square root,
4. fall back to the dense Cholesky / eigendecomposition reference
   (materializing the operator — last resort, modest ``n`` only).

Every rung is recorded in the :class:`~repro.resilience.policy.RecoveryLog`.
The no-failure fast path is byte-for-byte the same computation as the
unguarded code, so enabling a policy does not perturb trajectories.
"""

from __future__ import annotations

import copy
from typing import Any

import numpy as np

from .. import obs
from ..errors import (
    ConfigurationError,
    ConvergenceError,
    NotPositiveDefiniteError,
)
from ..krylov.chebyshev import chebyshev_sqrt, eigenvalue_bounds
from ..krylov.lanczos import LanczosInfo
from ..krylov.reference import cholesky_displacements, dense_sqrtm
from .failures import FailureKind, StepFailure, classify_exception
from .policy import RecoveryLog, RecoveryPolicy

__all__ = ["krylov_displacements_resilient",
           "cholesky_displacements_resilient", "materialize_operator"]


def materialize_operator(matvec: Any, dim: int) -> np.ndarray:
    """Dense ``(dim, dim)`` matrix of a matrix-free operator.

    Accepts anything :func:`~repro.core.mobility.as_mobility` does: a
    :class:`~repro.core.mobility.MobilityOperator`, a dense matrix or a
    legacy matvec callable.  A dense operator is returned directly;
    anything else is applied column by column — ``apply_block`` on a
    ``(dim, dim)`` identity would make batched operators (PME) allocate
    ``O(dim K^3)`` mesh workspaces for a last-resort path.
    """
    from ..core.mobility import DenseMobilityMatrix, as_mobility  # cycle
    operator = as_mobility(matvec, dim=dim)
    if isinstance(operator, DenseMobilityMatrix):
        return operator.matrix.astype(np.float64, copy=True)
    eye = np.eye(dim)
    cols = [np.asarray(operator.apply(eye[:, j]),
                       dtype=np.float64).reshape(dim)
            for j in range(dim)]
    return np.column_stack(cols)


def _dense_displacements(matvec, z2: np.ndarray, scale: float,
                         policy: RecoveryPolicy) -> tuple[np.ndarray, str]:
    """Last-resort rung: materialize and use the dense reference."""
    d = z2.shape[0]
    if d > policy.dense_fallback_max_dim:
        raise StepFailure(
            FailureKind.LANCZOS_NONCONVERGENCE,
            f"dense fallback refused: operator dimension {d} exceeds "
            f"dense_fallback_max_dim={policy.dense_fallback_max_dim}")
    with obs.span("recovery.dense_fallback", d=d):
        m = materialize_operator(matvec, d)
        m = 0.5 * (m + m.T)  # symmetrize against operator round-off
        try:
            return cholesky_displacements(m, z2, scale=scale), "cholesky"
        except NotPositiveDefiniteError:
            # clip the (round-off) negative part of the spectrum
            return scale * (dense_sqrtm(m, floor=0.0) @ z2), "eigh"


def krylov_displacements_resilient(
        generator, matvec: Any,
        z: np.ndarray, policy: RecoveryPolicy, log: RecoveryLog,
        step: int) -> tuple[np.ndarray, LanczosInfo | None]:
    """``sqrt(2 kT dt) M^(1/2) Z`` with the full recovery ladder.

    Parameters
    ----------
    generator:
        A :class:`~repro.core.brownian.KrylovBrownianGenerator` (or
        fault-injection wrapper); supplies the baseline ``tol`` /
        ``max_iter`` and the physical scale.
    matvec:
        The mobility application.
    z:
        Standard-normal block ``(d, s)`` (or vector ``(d,)``).
    policy, log:
        The recovery policy and the log receiving every event.
    step:
        Step anchor recorded with the events (completed-step count).

    Returns
    -------
    (displacements, info):
        The scaled displacement block and the diagnostics of the solve
        that produced it (``None`` for the dense fallback).
    """
    try:
        d = generator.generate(matvec, z)
        return d, generator.last_info
    except ConvergenceError as exc:
        first = exc
    kind = classify_exception(first)
    log.record(step, kind, "detect", attempt=0,
               **StepFailure.from_exception(first, step=step).diagnostics)

    best: ConvergenceError = first

    with obs.span("recovery.ladder", step=step, kind=kind.value):
        # Rung 1: Lanczos retries, grown budget, looser-then-tighter tol.
        schedule = policy.lanczos_retry_schedule(generator.tol,
                                                 generator.max_iter)
        for attempt, (tol, max_iter) in enumerate(schedule, start=1):
            retry = copy.copy(generator)
            retry.tol = tol
            retry.max_iter = max_iter
            try:
                d = retry.generate(matvec, z)
                info = retry.last_info
                log.record(step, kind, "retry-lanczos", attempt=attempt,
                           tol=tol, max_iter=max_iter,
                           iterations=info.iterations if info else None)
                return d, info
            except ConvergenceError as exc:
                log.record(step, classify_exception(exc), "detect",
                           attempt=attempt, tol=tol, max_iter=max_iter,
                           **StepFailure.from_exception(exc, step=step,
                                                        attempt=attempt
                                                        ).diagnostics)
                if (exc.residual is not None
                        and exc.best_iterate is not None
                        and (best.residual is None
                             or exc.residual < best.residual)):
                    best = exc

        # Rung 2: accept the best partial iterate if close enough.
        z2 = np.atleast_2d(np.asarray(z).T).T
        threshold = policy.accept_partial_rel_change
        if (threshold is not None and best.best_iterate is not None
                and best.residual is not None
                and best.residual <= threshold
                and np.asarray(best.best_iterate).shape == z2.shape):
            log.record(step, kind, "accept-partial",
                       rel_change=best.residual,
                       iterations=best.iterations)
            y = generator.scale * np.asarray(best.best_iterate)
            info = LanczosInfo(best.iterations or 0, False,
                               best.residual, best.n_matvecs or 0)
            return (y[:, 0] if np.asarray(z).ndim == 1 else y), info

        # Rung 3: Chebyshev (Fixman) polynomial square root.
        if policy.chebyshev_fallback:
            try:
                l_min, l_max = eigenvalue_bounds(
                    matvec, z2.shape[0],
                    n_iter=policy.chebyshev_bound_iterations)
                y, info = chebyshev_sqrt(matvec, z2, l_min, l_max,
                                         tol=generator.tol)
                log.record(step, kind, "fallback-chebyshev",
                           degree=info.iterations, l_min=l_min,
                           l_max=l_max)
                y = generator.scale * y
                return (y[:, 0] if np.asarray(z).ndim == 1 else y), info
            except ConvergenceError as exc:
                log.record(step, classify_exception(exc), "detect",
                           **StepFailure.from_exception(exc, step=step
                                                        ).diagnostics)

        # Rung 4: dense reference.
        if policy.cholesky_fallback:
            y, method = _dense_displacements(matvec, z2, generator.scale,
                                             policy)
            log.record(step, kind, "fallback-cholesky", method=method)
            return (y[:, 0] if np.asarray(z).ndim == 1 else y), None

        raise StepFailure.from_exception(best, step=step,
                                         attempt=len(schedule))


def cholesky_displacements_resilient(
        generator, matrix: np.ndarray, z: np.ndarray,
        policy: RecoveryPolicy, log: RecoveryLog,
        step: int) -> np.ndarray:
    """Algorithm 1 displacements with eigendecomposition fallback.

    The dense Cholesky factorization breaks down when round-off (or
    catastrophic overlap) pushes the mobility spectrum slightly
    negative; the eigendecomposition square root with clipping
    tolerates the semi-definite case.
    """
    try:
        return generator.generate(matrix, z)
    except (NotPositiveDefiniteError, ConfigurationError) as exc:
        # ConfigurationError: the strict-mode SPD contract rejects a
        # non-SPD matrix before the factorization ever runs.
        log.record(step, FailureKind.CHOLESKY_BREAKDOWN, "detect",
                   message=str(exc))
    m = 0.5 * (np.asarray(matrix, dtype=np.float64)
               + np.asarray(matrix, dtype=np.float64).T)
    y = generator.scale * (dense_sqrtm(m, floor=0.0)
                           @ np.asarray(z, dtype=np.float64))
    log.record(step, FailureKind.CHOLESKY_BREAKDOWN, "fallback-eigh")
    return y
