"""Fault-tolerant simulation runtime.

Production-length BD runs (the paper's Fig. 3 / Fig. 8 experiments)
must survive the failures that show up only after hours: a Lanczos
solve that stops converging as particles crowd, a NaN force from a
pathological overlap, a checkpoint half-written when the node dies.
This subpackage provides

* :mod:`~repro.resilience.failures` — the failure taxonomy
  (:class:`FailureKind`, :class:`StepFailure`),
* :mod:`~repro.resilience.backoff` — shared retry backoff with
  deterministic jitter, the dt-scale decay chokepoint and the
  :class:`CircuitBreaker` used by the ensemble supervisor,
* :mod:`~repro.resilience.policy` — :class:`RecoveryPolicy` knobs and
  the :class:`RecoveryLog` returned in run statistics,
* :mod:`~repro.resilience.recovery` — the retry → Chebyshev → dense
  reference degradation ladder,
* :mod:`~repro.resilience.faults` — the deterministic fault-injection
  harness used by the tests and ``repro simulate --inject-faults``.

``faults`` is imported lazily (it wraps concrete :mod:`repro.core`
classes, which themselves use this package's policy types).
"""

from .backoff import BackoffPolicy, CircuitBreaker, next_dt_scale
from .failures import FailureKind, StepFailure, classify_exception
from .policy import RecoveryEvent, RecoveryLog, RecoveryPolicy
from .recovery import (
    cholesky_displacements_resilient,
    krylov_displacements_resilient,
    materialize_operator,
)

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "next_dt_scale",
    "FailureKind",
    "StepFailure",
    "classify_exception",
    "RecoveryPolicy",
    "RecoveryEvent",
    "RecoveryLog",
    "krylov_displacements_resilient",
    "cholesky_displacements_resilient",
    "materialize_operator",
    "FaultSchedule",
    "InjectedFault",
    "FaultyForceField",
    "FaultyOperator",
    "FaultyKrylovGenerator",
    "faulty_checkpoint_callback",
    "install_faults",
]

_FAULT_NAMES = {"FaultSchedule", "InjectedFault", "FaultyForceField",
                "FaultyOperator", "FaultyKrylovGenerator",
                "faulty_checkpoint_callback", "install_faults"}


def __getattr__(name):
    if name in _FAULT_NAMES:
        from . import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
