"""Failure taxonomy of the fault-tolerant simulation runtime.

Long production runs (the paper's Fig. 3: 500,000 steps over ~10 hours)
fail in a small number of recurring ways.  This module names them —
:class:`FailureKind` — and wraps every occurrence in a single
structured exception, :class:`StepFailure`, carrying the step number,
the retry attempt and the solver diagnostics, so the recovery machinery
in :mod:`repro.resilience.recovery` can decide *how* to degrade instead
of pattern-matching on exception strings.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from ..errors import (
    CheckpointCorruptionError,
    ConvergenceError,
    NotPositiveDefiniteError,
    ReproError,
)

__all__ = ["FailureKind", "StepFailure", "classify_exception"]


class FailureKind(str, enum.Enum):
    """The recognised ways a BD step (or its support machinery) fails."""

    #: (Block) Lanczos exhausted ``max_iter`` before reaching ``e_k``.
    LANCZOS_NONCONVERGENCE = "lanczos-nonconvergence"
    #: The Chebyshev polynomial degree cap was insufficient.
    CHEBYSHEV_FAILURE = "chebyshev-failure"
    #: Cholesky factorization of the dense mobility broke down.
    CHOLESKY_BREAKDOWN = "cholesky-breakdown"
    #: A force evaluation produced NaN/Inf entries.
    NONFINITE_FORCES = "nonfinite-forces"
    #: A proposed displacement or position update was NaN/Inf.
    NONFINITE_STATE = "nonfinite-state"
    #: A checkpoint file failed its integrity verification.
    CHECKPOINT_CORRUPTION = "checkpoint-corruption"
    #: Anything else raised from inside the step loop.
    UNKNOWN = "unknown"


def classify_exception(exc: BaseException) -> FailureKind:
    """Map a low-level exception to its :class:`FailureKind`."""
    if isinstance(exc, StepFailure):
        return exc.kind
    if isinstance(exc, ConvergenceError):
        if "chebyshev" in str(exc).lower():
            return FailureKind.CHEBYSHEV_FAILURE
        return FailureKind.LANCZOS_NONCONVERGENCE
    if isinstance(exc, NotPositiveDefiniteError):
        return FailureKind.CHOLESKY_BREAKDOWN
    if isinstance(exc, CheckpointCorruptionError):
        return FailureKind.CHECKPOINT_CORRUPTION
    return FailureKind.UNKNOWN


def _diagnostics_from(exc: BaseException) -> dict[str, Any]:
    """Pull structured solver diagnostics off a wrapped exception."""
    diag: dict[str, Any] = {}
    if isinstance(exc, ConvergenceError):
        if exc.iterations is not None:
            diag["iterations"] = exc.iterations
        if exc.residual is not None:
            diag["rel_change"] = exc.residual
        if exc.n_matvecs is not None:
            diag["n_matvecs"] = exc.n_matvecs
        if isinstance(exc.best_iterate, np.ndarray):
            diag["has_best_iterate"] = True
    return diag


class StepFailure(ReproError):
    """A BD step failed, with enough context to attempt recovery.

    Parameters
    ----------
    kind:
        The :class:`FailureKind` classification.
    message:
        Human-readable description.
    step:
        The (1-based) step being attempted when the failure occurred;
        ``None`` when the failure is not tied to a step (e.g. a corrupt
        checkpoint discovered at load time).
    attempt:
        Zero-based retry attempt on which this failure occurred.
    cause:
        The wrapped low-level exception, if any (also set as
        ``__cause__``).
    diagnostics:
        Structured solver context (``iterations``, ``rel_change``,
        ``n_matvecs``, ...); merged with whatever can be extracted from
        ``cause``.
    """

    def __init__(self, kind: FailureKind, message: str, *,
                 step: int | None = None, attempt: int = 0,
                 cause: BaseException | None = None,
                 diagnostics: dict[str, Any] | None = None):
        where = f" at step {step}" if step is not None else ""
        super().__init__(f"[{kind.value}{where}, attempt {attempt}] {message}")
        self.kind = kind
        self.step = step
        self.attempt = attempt
        self.cause = cause
        self.diagnostics = dict(diagnostics or {})
        if cause is not None:
            self.__cause__ = cause
            for key, value in _diagnostics_from(cause).items():
                self.diagnostics.setdefault(key, value)

    @classmethod
    def from_exception(cls, exc: BaseException, *, step: int | None = None,
                       attempt: int = 0) -> StepFailure:
        """Wrap ``exc`` in a classified :class:`StepFailure`."""
        if isinstance(exc, cls):
            return exc
        return cls(classify_exception(exc), str(exc), step=step,
                   attempt=attempt, cause=exc)
