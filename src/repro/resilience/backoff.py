"""Shared retry backoff, dt-scale decay and circuit breaking.

Every layer of the runtime that retries something — the dt-backoff path
of the integrators (PR 2), the supervised ensemble runtime
(:mod:`repro.runtime`) retrying killed or hung workers — needs the same
three primitives:

* :class:`BackoffPolicy` — capped exponential delays with
  *deterministic* jitter: the jitter of retry ``attempt`` for a given
  ``seed`` is a pure function of ``(seed, attempt)``, so a re-executed
  campaign schedules identically (the repo-wide reproducibility
  contract extends to failure handling).
* :func:`next_dt_scale` — the geometric time-step decay with a floor
  used by the integrators' non-finite-state backoff; kept here so the
  decay/floor decision has one chokepoint instead of inline arithmetic
  per integrator.
* :class:`CircuitBreaker` — consecutive-failure counting that *opens*
  after a threshold, letting the supervisor stop retrying a task that
  keeps dying and route it to a safer configuration (or quarantine it)
  instead of burning worker restarts forever.

Nothing in this module reads a clock: delays are computed, not slept,
so policies stay unit-testable and schedulers own their own waiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["BackoffPolicy", "next_dt_scale", "CircuitBreaker"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attributes
    ----------
    initial:
        Delay (seconds) of the first retry (attempt 0), pre-jitter.
    factor:
        Multiplicative growth per retry; must be >= 1.
    max_delay:
        Cap applied before jitter.
    jitter:
        Fractional half-width of the uniform jitter band: a delay ``d``
        becomes ``d * (1 + jitter * u)`` with ``u ~ U(-1, 1)`` drawn
        deterministically from ``(seed, attempt)``.  ``0`` disables
        jitter entirely.
    max_retries:
        Retries a consumer should attempt before giving up; advisory —
        :meth:`delay` itself accepts any attempt index.
    """

    initial: float = 0.25
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.initial < 0:
            raise ConfigurationError(
                f"initial must be >= 0, got {self.initial}")
        if self.factor < 1.0:
            raise ConfigurationError(
                f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")

    def delay(self, attempt: int, *, seed: int = 0) -> float:
        """Jittered delay (seconds) before 0-based retry ``attempt``.

        Deterministic: the same ``(policy, seed, attempt)`` always
        yields the same delay, independent of call order — each draw
        uses its own ``default_rng([seed, attempt])`` substream.
        """
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.initial * self.factor ** attempt, self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        u = 2.0 * np.random.default_rng([seed, attempt]).random() - 1.0
        return raw * (1.0 + self.jitter * u)

    def delays(self, *, seed: int = 0) -> list[float]:
        """The full retry schedule: one delay per allowed retry."""
        return [self.delay(a, seed=seed) for a in range(self.max_retries)]


def next_dt_scale(scale: float, factor: float, floor: float) -> float | None:
    """One rung of the geometric dt-backoff ladder.

    Returns ``scale * factor``, or ``None`` when the decayed scale
    would undershoot ``floor`` — the caller escalates instead of
    shrinking the time step further.  This is the single chokepoint of
    the integrators' non-finite-state backoff
    (:meth:`repro.core.integrators.BrownianDynamicsBase._propose_step`).
    """
    nxt = scale * factor
    return None if nxt < floor else nxt


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker guarding one retried operation.

    The breaker is *closed* (operations allowed) until
    ``failure_threshold`` consecutive failures are recorded, then
    *opens*.  A success while closed resets the count.  The supervisor
    keeps one breaker per task: an open breaker means "stop retrying
    this task as-is" and triggers the safe-mode reroute / quarantine
    ladder instead of another identical attempt.
    """

    failure_threshold: int = 3
    failures: int = 0
    #: Total failures ever recorded (not reset by successes).
    total_failures: int = 0
    _open: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}")

    @property
    def open(self) -> bool:
        """True once the threshold has been reached."""
        return self._open

    def record_failure(self) -> bool:
        """Count one failure; returns ``True`` if the breaker is now open."""
        self.failures += 1
        self.total_failures += 1
        if self.failures >= self.failure_threshold:
            self._open = True
        return self._open

    def record_success(self) -> None:
        """A success while closed resets the consecutive count."""
        if not self._open:
            self.failures = 0

    def reset(self) -> None:
        """Close the breaker again (used after rerouting to safe mode)."""
        self.failures = 0
        self._open = False
