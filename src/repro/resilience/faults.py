"""Deterministic fault injection for soak-testing the recovery layer.

The harness wraps the four places a long BD run actually fails —
force evaluation, the PME mobility operator, the Brownian displacement
solver and checkpoint I/O — and injects faults on a *seeded, repeatable
schedule*: the same :class:`FaultSchedule` configuration always fires
at the same call indices, so every recovery path can be exercised by a
regression test and every injected fault can be accounted for against
the run's :class:`~repro.resilience.policy.RecoveryLog`.

Exposed on the command line as ``repro simulate --inject-faults SPEC``
(see :meth:`FaultSchedule.from_spec`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..core.brownian import KrylovBrownianGenerator
from ..core.checkpoint import checkpoint_callback, save_checkpoint
from ..core.forces import ForceField
from ..errors import ConfigurationError, ConvergenceError
from .failures import FailureKind
from .policy import RecoveryLog

__all__ = ["FaultSchedule", "InjectedFault", "FaultyForceField",
           "FaultyOperator", "FaultyKrylovGenerator",
           "faulty_checkpoint_callback", "install_faults"]

_SITES = ("force", "operator", "brownian", "brownian-nan", "checkpoint")


@dataclass
class InjectedFault:
    """One fault the schedule actually fired."""

    site: str
    kind: str
    call_index: int


@dataclass
class FaultSchedule:
    """Seeded schedule deciding, per call site, when to inject.

    Each site keeps its own call counter and its own deterministic
    random substream, so injection at one site never perturbs the
    schedule of another, and a recovery *retry* (which advances the
    counter) deterministically sees a clean call.

    Attributes
    ----------
    seed:
        Master seed of the per-site substreams.
    nan_force_rate, nan_operator_rate, lanczos_failure_rate,
    nan_brownian_rate:
        Per-call firing probabilities of the rate-driven sites.
    force_calls, operator_calls, brownian_calls, brownian_nan_calls:
        Explicit 0-based call indices that always fire (for targeted
        tests), in addition to the rates.
    checkpoint_events:
        Map of 0-based checkpoint *write* index to ``"kill"``,
        ``"truncate"`` or ``"bitflip"``.
    """

    seed: int = 0
    nan_force_rate: float = 0.0
    nan_operator_rate: float = 0.0
    lanczos_failure_rate: float = 0.0
    nan_brownian_rate: float = 0.0
    force_calls: tuple[int, ...] = ()
    operator_calls: tuple[int, ...] = ()
    brownian_calls: tuple[int, ...] = ()
    brownian_nan_calls: tuple[int, ...] = ()
    checkpoint_events: dict[int, str] = field(default_factory=dict)
    #: Every fault fired so far, in firing order.
    injected: list[InjectedFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._counters = dict.fromkeys(_SITES, 0)
        self._rngs = {site: np.random.default_rng([self.seed, i])
                      for i, site in enumerate(_SITES)}
        self._explicit = {
            "force": frozenset(self.force_calls),
            "operator": frozenset(self.operator_calls),
            "brownian": frozenset(self.brownian_calls),
            "brownian-nan": frozenset(self.brownian_nan_calls),
            "checkpoint": frozenset(),
        }
        self._rates = {
            "force": self.nan_force_rate,
            "operator": self.nan_operator_rate,
            "brownian": self.lanczos_failure_rate,
            "brownian-nan": self.nan_brownian_rate,
            "checkpoint": 0.0,
        }
        for kind in self.checkpoint_events.values():
            if kind not in ("kill", "truncate", "bitflip"):
                raise ConfigurationError(
                    f"unknown checkpoint event {kind!r}; "
                    "use kill, truncate or bitflip")

    def fire(self, site: str, kind: str) -> bool:
        """Advance ``site``'s counter; ``True`` if a fault fires now.

        The random draw is made on every call (fired or not) so the
        schedule depends only on the call index, never on what earlier
        injections did to the simulation.
        """
        index = self._counters[site]
        self._counters[site] += 1
        hit = self._rngs[site].random() < self._rates[site]
        if index in self._explicit[site]:
            hit = True
        if hit:
            self.injected.append(InjectedFault(site, kind, index))
        return hit

    def checkpoint_event(self, write_index: int) -> str | None:
        """The event scheduled for checkpoint write ``write_index``."""
        event = self.checkpoint_events.get(write_index)
        if event is not None:
            self.injected.append(
                InjectedFault("checkpoint", event, write_index))
        return event

    def count(self, site: str) -> int:
        """Number of faults fired so far at ``site``."""
        return sum(1 for f in self.injected if f.site == site)

    @classmethod
    def from_spec(cls, spec: str) -> FaultSchedule:
        """Parse a CLI spec like ``"seed=7,lanczos=0.01,nan-force=0.005,ckpt=kill@3"``.

        Keys: ``seed`` (int), ``lanczos`` / ``nan-force`` /
        ``nan-operator`` / ``nan-brownian`` (per-call rates), and
        ``ckpt=EVENT@INDEX`` (repeatable).
        """
        kwargs: dict = {"checkpoint_events": {}}
        keymap = {"lanczos": "lanczos_failure_rate",
                  "nan-force": "nan_force_rate",
                  "nan-operator": "nan_operator_rate",
                  "nan-brownian": "nan_brownian_rate"}
        for item in filter(None, (s.strip() for s in spec.split(","))):
            try:
                key, value = item.split("=", 1)
            except ValueError:
                raise ConfigurationError(
                    f"malformed --inject-faults item {item!r}; "
                    "expected key=value") from None
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key in keymap:
                kwargs[keymap[key]] = float(value)
            elif key == "ckpt":
                try:
                    event, index = value.split("@")
                    kwargs["checkpoint_events"][int(index)] = event
                except ValueError:
                    raise ConfigurationError(
                        f"malformed ckpt spec {value!r}; expected "
                        "EVENT@INDEX, e.g. kill@3") from None
            else:
                raise ConfigurationError(
                    f"unknown --inject-faults key {key!r}")
        return cls(**kwargs)


def _poison(array: np.ndarray) -> np.ndarray:
    """Copy of ``array`` with its first entry replaced by NaN."""
    out = np.array(array, dtype=np.float64, copy=True)
    out.reshape(-1)[0] = np.nan
    return out


class FaultyForceField(ForceField):
    """Wraps a force field, injecting NaN forces on schedule."""

    def __init__(self, inner: ForceField, schedule: FaultSchedule):
        self.inner = inner
        self.schedule = schedule

    def forces(self, positions: np.ndarray) -> np.ndarray:  # noqa: RPR001 — pass-through; the wrapped field validates
        f = self.inner.forces(positions)
        if self.schedule.fire("force", "nan"):
            f = _poison(f)
        return f

    def energy(self, positions: np.ndarray) -> float:  # noqa: RPR001 — pass-through; the wrapped field validates
        return self.inner.energy(positions)


class FaultyOperator:
    """Wraps a :class:`~repro.pme.operator.PMEOperator`, poisoning
    ``apply`` outputs on schedule.  All other attributes delegate."""

    def __init__(self, inner, schedule: FaultSchedule):
        self._inner = inner
        self._schedule = schedule

    def apply(self, forces) -> np.ndarray:
        out = self._inner.apply(forces)
        if self._schedule.fire("operator", "nan"):
            out = _poison(out)
        return out

    def __call__(self, forces) -> np.ndarray:
        return self.apply(forces)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FaultyKrylovGenerator(KrylovBrownianGenerator):
    """Krylov generator injecting forced non-convergence / NaN output.

    A real :class:`KrylovBrownianGenerator` subclass, so the recovery
    ladder's ``copy.copy`` retry mechanics (adjusting ``tol`` and
    ``max_iter``) work unchanged; the copies share the schedule, and
    the retry — being the next call at the ``brownian`` site — sees a
    clean draw unless the schedule fires again.
    """

    def __init__(self, inner: KrylovBrownianGenerator,
                 schedule: FaultSchedule):
        self.scale = inner.scale
        self.tol = inner.tol
        self.max_iter = inner.max_iter
        self.last_info = inner.last_info
        self.schedule = schedule

    def generate(self, matvec, z):
        if self.schedule.fire("brownian", "nonconvergence"):
            raise ConvergenceError(
                "injected Lanczos non-convergence", iterations=0,
                residual=float("inf"), n_matvecs=0)
        d = super().generate(matvec, z)
        if self.schedule.fire("brownian-nan", "nan"):
            d = _poison(d)
        return d


def faulty_checkpoint_callback(path: str | os.PathLike, integrator,
                               interval: int, schedule: FaultSchedule,
                               log: RecoveryLog | None = None):
    """A rotating checkpoint callback with scheduled write faults.

    * ``kill`` — the process "dies" between writing the temp file and
      the atomic rename: nothing reaches ``path`` (the previous
      checkpoint stays valid — exactly what the atomic
      :func:`~repro.core.checkpoint.save_checkpoint` guarantees).
    * ``truncate`` — the finished file is cut to 60 % of its length.
    * ``bitflip`` — one byte in the middle of the file is flipped.
    """
    state = {"writes": 0}

    def save(p, wrapped, unwrapped, step, rng):
        event = schedule.checkpoint_event(state["writes"])
        state["writes"] += 1
        if event == "kill":
            if log is not None:
                log.record(step, FailureKind.CHECKPOINT_CORRUPTION,
                           "inject-checkpoint-kill",
                           write_index=state["writes"] - 1)
            return  # simulated mid-write death: path is never replaced
        save_checkpoint(p, wrapped, unwrapped, step, rng)
        if event in ("truncate", "bitflip"):
            if log is not None:
                log.record(step, FailureKind.CHECKPOINT_CORRUPTION,
                           f"inject-checkpoint-{event}",
                           write_index=state["writes"] - 1)
            _corrupt_file(p, event)

    return checkpoint_callback(path, integrator, interval, _save=save)


def _corrupt_file(path: str | os.PathLike, event: str) -> None:
    size = os.path.getsize(path)
    if event == "truncate":
        with open(path, "r+b") as fh:
            fh.truncate(max(1, int(size * 0.6)))
    else:  # bitflip
        with open(path, "r+b") as fh:
            fh.seek(size // 2)
            byte = fh.read(1)
            fh.seek(size // 2)
            fh.write(bytes([byte[0] ^ 0xFF]))


def install_faults(integrator, schedule: FaultSchedule) -> None:
    """Thread a schedule through an integrator's fault sites, in place.

    Wraps the force field and — for the matrix-free algorithm — the
    Brownian generator; the PME operator is wrapped on every rebuild
    via ``_prepare``.  Checkpoint faults are separate
    (:func:`faulty_checkpoint_callback`), since checkpointing is a
    callback concern.
    """
    if integrator.force_field is not None:
        integrator.force_field = FaultyForceField(integrator.force_field,
                                                  schedule)
    generator = getattr(integrator, "_generator", None)
    if isinstance(generator, KrylovBrownianGenerator):
        integrator._generator = FaultyKrylovGenerator(generator, schedule)
        inner_prepare = integrator._prepare

        def prepare(positions):  # noqa: RPR001 — pass-through; _prepare validates
            inner_prepare(positions)
            integrator._operator = FaultyOperator(integrator._operator,
                                                  schedule)

        integrator._prepare = prepare
