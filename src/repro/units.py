"""Physical constants and unit conventions.

The library works in *reduced units* by default:

* particle radius ``a = 1``,
* thermal energy ``k_B T = 1``,
* drag coefficient ``6 pi eta a = 1`` (i.e. viscosity ``eta = 1/(6 pi)``),

so the Stokes-Einstein diffusion coefficient of an isolated particle is
``D_0 = k_B T / (6 pi eta a) = 1`` and times are measured in units of
``a^2 / D_0``.  Every formula in the package nevertheless carries the
symbols ``(a, eta, kT)`` explicitly, so SI or CGS parameter sets work
unchanged; :class:`FluidParams` is the single place they are bundled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ConfigurationError

__all__ = ["FluidParams", "REDUCED"]


@dataclass(frozen=True)
class FluidParams:
    """Solvent and thermodynamic parameters of a BD simulation.

    Parameters
    ----------
    radius:
        Hydrodynamic radius ``a`` of the (monodisperse) particles.
    viscosity:
        Dynamic viscosity ``eta`` of the implicit solvent.
    kT:
        Thermal energy ``k_B T``.
    """

    radius: float = 1.0
    viscosity: float = 1.0 / (6.0 * math.pi)
    kT: float = 1.0

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ConfigurationError(f"radius must be positive, got {self.radius}")
        if self.viscosity <= 0:
            raise ConfigurationError(
                f"viscosity must be positive, got {self.viscosity}")
        if self.kT <= 0:
            raise ConfigurationError(f"kT must be positive, got {self.kT}")

    @property
    def drag(self) -> float:
        """Stokes drag coefficient ``6 pi eta a`` of one particle."""
        return 6.0 * math.pi * self.viscosity * self.radius

    @property
    def mobility0(self) -> float:
        """Self-mobility ``mu_0 = 1 / (6 pi eta a)`` of an isolated particle."""
        return 1.0 / self.drag

    @property
    def D0(self) -> float:
        """Stokes-Einstein diffusion coefficient ``k_B T / (6 pi eta a)``."""
        return self.kT * self.mobility0

    def with_(self, **kwargs) -> "FluidParams":
        """Return a copy with the given fields replaced."""
        data = {"radius": self.radius, "viscosity": self.viscosity, "kT": self.kT}
        data.update(kwargs)
        return FluidParams(**data)


#: The default reduced-unit parameter set (``a = kT = 6 pi eta a = 1``).
REDUCED = FluidParams()
