"""The ``repro-serve/1`` wire protocol: JSON lines over a local socket.

Every message is one JSON object on one ``\\n``-terminated line.
Clients send *requests* (``op`` + ``id``); the server answers with
exactly one *response* per request (same ``id``, a ``status`` field),
optionally preceded by streamed *events* (same ``id``, an ``event``
field) for long-running jobs.  Three response statuses exist:

* ``"ok"``     — the request completed; payload under ``"result"``;
* ``"shed"``   — admission control refused the request *before*
  queueing it (bounded queues, per-client caps).  The response carries
  ``retry_after`` seconds, the ``Retry-After`` discipline: the client
  backs off instead of the server buffering unboundedly;
* ``"error"``  — the request was admitted but failed; carries the
  :class:`~repro.resilience.failures.FailureKind` classification and
  the message.

Arrays cross the wire as raw little-endian float64 bytes in base64
(``{"shape": [...], "b64": "..."}``) so responses are **bit-exact** —
the currency of the determinism contract: a served mobility apply must
equal a direct :meth:`~repro.pme.operator.PMEOperator.apply_block`
call byte for byte.  Plain JSON lists of numbers are accepted on input
for hand-written clients.

:class:`SystemSpec` is the deterministic system recipe shared by
``mobility.apply`` and ``simulate`` requests.  Its
:meth:`~SystemSpec.fingerprint` folds in the result-affecting
:class:`~repro.config.RuntimeConfig` knob (``no_ckernel`` — backends
are bit-identical, kernel modes are not), so the batching scheduler
only ever coalesces requests that are provably answerable by one
operator, and the result cache never serves bytes produced under a
different kernel configuration.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Any

import numpy as np

from ..config import get_config
from ..errors import ReproError

__all__ = ["PROTOCOL", "ProtocolError", "SystemSpec", "encode_array",
           "decode_array", "encode_message", "decode_line",
           "shed_response", "error_response", "ok_response",
           "MAX_LINE_BYTES"]

#: Protocol identifier sent in every ``ping`` response.
PROTOCOL = "repro-serve/1"

#: Hard cap on one wire line (requests beyond it are a protocol error
#: long before admission control sees them).
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Known request operations.
OPS = ("ping", "stats", "mobility.apply", "simulate", "cancel")


class ProtocolError(ReproError):
    """Malformed request: bad JSON, unknown op, invalid payload."""


# ----------------------------------------------------------------------
# array codec
# ----------------------------------------------------------------------

def encode_array(array: np.ndarray) -> dict[str, Any]:
    """Exact-bytes wire form of a float64 array."""
    arr = np.ascontiguousarray(array, dtype=np.float64)
    return {"shape": list(arr.shape),
            "b64": base64.b64encode(arr.tobytes()).decode("ascii")}


def decode_array(obj: Any, what: str = "array") -> np.ndarray:
    """Decode the wire form (or a plain nested list) to float64."""
    if isinstance(obj, dict):
        try:
            shape = tuple(int(d) for d in obj["shape"])
            raw = base64.b64decode(obj["b64"], validate=True)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed {what}: {exc}") from None
        expected = 8 * int(np.prod(shape)) if shape else 8
        if len(raw) != expected:
            raise ProtocolError(
                f"{what}: payload is {len(raw)} bytes, shape {shape} "
                f"needs {expected}")
        return np.frombuffer(raw, dtype="<f8").reshape(shape).copy()
    if isinstance(obj, list):
        try:
            return np.asarray(obj, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed {what}: {exc}") from None
    raise ProtocolError(
        f"{what} must be a {{shape, b64}} object or a number list, "
        f"got {type(obj).__name__}")


# ----------------------------------------------------------------------
# system specification + fingerprints
# ----------------------------------------------------------------------

#: Fields that determine the mobility operator (and therefore which
#: requests may share one batched ``apply_block``).
_OPERATOR_FIELDS = ("n", "phi", "system_seed", "e_p", "p", "kernel",
                    "interpolation")


@dataclass(frozen=True)
class SystemSpec:
    """Deterministic recipe of one served system.

    ``n``/``phi``/``system_seed`` generate the suspension exactly as
    :func:`~repro.systems.suspension.make_suspension` does; ``e_p`` and
    ``p`` select the tuned PME parameters; ``dt``/``lambda_rpy``/
    ``e_k``/``forces`` only matter to ``simulate`` requests but are
    part of the full fingerprint so the result cache can key on it.
    """

    n: int
    phi: float = 0.2
    system_seed: int = 0
    e_p: float = 1e-3
    p: int = 6
    kernel: str = "rpy"
    interpolation: str = "bspline"
    dt: float = 1e-3
    lambda_rpy: int = 16
    e_k: float = 1e-2
    forces: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.n <= 1_000_000:
            raise ProtocolError(f"n must be in [1, 1e6], got {self.n}")
        if not 0.0 < self.phi < 0.64:
            raise ProtocolError(f"phi must be in (0, 0.64), got {self.phi}")
        if self.e_p <= 0 or self.e_k <= 0:
            raise ProtocolError("e_p and e_k must be positive")
        if self.dt <= 0:
            raise ProtocolError(f"dt must be positive, got {self.dt}")
        if self.lambda_rpy < 1:
            raise ProtocolError(
                f"lambda_rpy must be >= 1, got {self.lambda_rpy}")

    @classmethod
    def from_json(cls, obj: Any) -> "SystemSpec":
        if not isinstance(obj, dict):
            raise ProtocolError("'system' must be an object")
        known = {f.name for f in fields(cls)}
        unknown = set(obj) - known
        if unknown:
            raise ProtocolError(
                f"unknown system fields: {sorted(unknown)} "
                f"(known: {sorted(known)})")
        if "n" not in obj:
            raise ProtocolError("'system.n' is required")
        try:
            return cls(**obj)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid system spec: {exc}") from None

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    def _digest(self, payload: dict[str, Any]) -> str:
        payload = dict(payload)
        # the one RuntimeConfig knob that changes result *bytes*:
        # backend choice is bit-identical by the exec-layer contract,
        # the compiled-vs-NumPy kernel mode is not
        payload["no_ckernel"] = get_config().no_ckernel
        payload["schema"] = PROTOCOL
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()

    def fingerprint(self) -> str:
        """Digest of every result-affecting field + runtime config."""
        return self._digest(self.to_json())

    def operator_key(self) -> str:
        """Digest of the fields that determine the mobility operator.

        Requests with equal operator keys are answerable by the same
        :class:`~repro.pme.operator.PMEOperator` and may therefore be
        coalesced into one batched apply.
        """
        payload = {name: getattr(self, name) for name in _OPERATOR_FIELDS}
        return self._digest(payload)


# ----------------------------------------------------------------------
# message framing
# ----------------------------------------------------------------------

def encode_message(message: dict[str, Any]) -> bytes:
    """One wire line (JSON + newline) for a message object."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a message object."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"line exceeds {MAX_LINE_BYTES} bytes")
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def validate_request(message: dict[str, Any]) -> str:
    """Check the envelope of a request; returns the op name."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (known: {', '.join(OPS)})")
    if not isinstance(message.get("id"), (str, int)):
        raise ProtocolError("request 'id' must be a string or integer")
    return str(op)


def ok_response(request: dict[str, Any],
                result: dict[str, Any]) -> dict[str, Any]:
    """The single success response of a request."""
    return {"id": request.get("id"), "op": request.get("op"),
            "status": "ok", "result": result}


def shed_response(request: dict[str, Any], reason: str,
                  retry_after: float) -> dict[str, Any]:
    """Admission refusal with a Retry-After hint (seconds)."""
    return {"id": request.get("id"), "op": request.get("op"),
            "status": "shed", "reason": reason,
            "retry_after": round(float(retry_after), 4)}


def error_response(request: dict[str, Any], kind: str,
                   message: str) -> dict[str, Any]:
    """Failure response carrying the resilience-taxonomy kind."""
    return {"id": request.get("id"), "op": request.get("op"),
            "status": "error", "kind": kind, "message": message}
