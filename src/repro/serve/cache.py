"""Deterministic result cache (LRU + TTL) and single-flight dedup.

Because every served result is a pure function of its cache key — the
:class:`~repro.serve.protocol.SystemSpec` fingerprint plus the
request's own inputs (seed and steps for ``simulate``, the exact force
bytes for ``mobility.apply``) — caching is *semantically invisible*: a
hit returns the same bytes the computation would have produced.  The
cache therefore needs no invalidation protocol, only bounds:

* **LRU** — at most ``max_entries`` results are kept; the least
  recently *used* entry is evicted first;
* **TTL** — entries older than ``ttl`` seconds are treated as absent
  (and dropped on access), so a long-lived server does not pin
  arbitrarily old campaign results in memory forever.

:class:`SingleFlight` deduplicates *concurrent* identical requests:
the first caller computes, every later caller that arrives before the
result lands awaits the same future.  Combined with the cache this
gives the classic thundering-herd protection — N identical requests
cost one computation, then hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from ..errors import ConfigurationError
from ..utils.timing import now

__all__ = ["ResultCache", "SingleFlight"]


@dataclass
class _Entry:
    value: Any
    stored_at: float


@dataclass
class CacheStats:
    """Counters exposed through the ``stats`` op and serve metrics."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    def to_json(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations}


class ResultCache:
    """Bounded, time-limited map of request keys to finished results.

    Parameters
    ----------
    max_entries:
        LRU bound (>= 1).
    ttl:
        Seconds an entry stays servable; ``None`` disables expiry.
    clock:
        Injectable time source (tests); defaults to
        :func:`repro.utils.timing.now`.
    """

    def __init__(self, max_entries: int = 256, ttl: float | None = 600.0,
                 clock: Callable[[], float] = now):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}")
        if ttl is not None and ttl <= 0:
            raise ConfigurationError(f"ttl must be positive, got {ttl}")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Any | None:
        """The cached value, or ``None`` on miss/expiry."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if (self.ttl is not None
                and self._clock() - entry.stored_at > self.ttl):
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def put(self, key: str, value: Any) -> None:
        """Store a finished result (refreshes recency and timestamp)."""
        self._entries[key] = _Entry(value=value, stored_at=self._clock())
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def to_json(self) -> dict[str, Any]:
        return {"entries": len(self._entries),
                "max_entries": self.max_entries, "ttl": self.ttl,
                **self.stats.to_json()}


class SingleFlight:
    """Coalesce concurrent identical computations onto one future.

    Asyncio-native (no locks needed: all bookkeeping happens on the
    event loop).  Usage::

        result = await flight.run(key, lambda: compute_async())

    The first ``run`` for a key invokes ``compute``; callers arriving
    while it is in flight await the same result.  The key is released
    when the computation finishes (either way), so a *failed* flight
    is retried by the next request rather than caching the exception
    forever.
    """

    def __init__(self) -> None:
        self._inflight: dict[str, "Any"] = {}
        #: Number of calls answered by joining an existing flight.
        self.joined = 0

    def active(self) -> int:
        """Number of computations currently in flight."""
        return len(self._inflight)

    async def run(self, key: str,
                  compute: Callable[[], Awaitable[Any]]) -> Any:
        import asyncio

        existing = self._inflight.get(key)
        if existing is not None:
            self.joined += 1
            return await asyncio.shield(existing)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            value = await compute()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # consume so a join-free failure isn't "never retrieved"
                future.exception()
            raise
        else:
            if not future.done():
                future.set_result(value)
            return value
        finally:
            self._inflight.pop(key, None)
