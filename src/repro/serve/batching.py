"""Cross-request batching: coalesce mobility applies into ``apply_block``.

The paper's Section IV.E observation — the reciprocal-space pipeline
is most efficient applied to *blocks* of vectors — is exploited inside
one process by :meth:`~repro.pme.operator.PMEOperator.apply_block`
(PR 4).  This module extends the same economics *across clients*: many
small ``mobility.apply`` requests against the same system are merged
into one block apply, so the spread product, the stacked FFTs, the
slab-fused influence function and the BCSR SpMM are all amortized over
requests that arrived independently.

Correctness rests on a property the test suite pins down bit-exactly:
``apply_block`` computes every output column independently (spreading,
FFT lanes, influence multiply, interpolation and the real-space SpMM
all accumulate per column in a fixed order), so slicing a request's
columns out of a batched result equals applying that request alone —
byte for byte.  Batching changes *latency*, never *bytes*.

Scheduling is classic max-batch / max-wait microbatching:

* the first request for an operator key opens a window and arms a
  ``max_wait`` timer;
* requests arriving inside the window join the batch;
* the batch flushes when its column count reaches ``max_batch`` or
  the timer fires, whichever is first;
* per-operator applies are serialized (an :class:`asyncio.Lock` per
  entry) because the shared :class:`~repro.pme.cache.MobilityCache`
  workspaces are scratch — two concurrent applies on one operator
  would race on them.  Distinct systems run concurrently.

The :class:`OperatorPool` keeps one built operator (plus its
:class:`~repro.pme.cache.MobilityCache`) per
:meth:`~repro.serve.protocol.SystemSpec.operator_key`, LRU-bounded;
construction is itself single-flighted so a burst of first requests
builds each operator once.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from ..resilience import classify_exception
from ..utils.timing import now
from .cache import SingleFlight
from .protocol import ProtocolError, SystemSpec

__all__ = ["OperatorPool", "MobilityBatcher", "build_operator"]

#: Histogram buckets for batch occupancy (columns per flushed apply).
_OCCUPANCY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Histogram buckets for in-queue wait (seconds).
_WAIT_BUCKETS = (1e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1.0)


def build_operator(spec: SystemSpec):
    """Deterministically build the PME operator of a system spec.

    This is *the* definition of what a served ``mobility.apply``
    answers: the same construction a direct caller would write by
    hand.  Runs in a worker thread (CPU-bound).
    """
    from ..pme.cache import MobilityCache
    from ..pme.operator import PMEOperator
    from ..pme.tuning import tune_parameters
    from ..systems.suspension import make_suspension

    suspension = make_suspension(spec.n, spec.phi, seed=spec.system_seed)
    params = tune_parameters(
        suspension.n, suspension.box, target_ep=spec.e_p, p=spec.p,
        fluid=suspension.fluid, interpolation=spec.interpolation,
        kernel=spec.kernel)
    cache = MobilityCache()
    operator = PMEOperator(suspension.positions, suspension.box, params,
                           fluid=suspension.fluid, cache=cache)
    return operator, cache


@dataclass
class OperatorEntry:
    """One resident operator and its batching state."""

    key: str
    operator: Any
    cache: Any
    #: Serializes applies — MobilityCache workspaces are shared scratch.
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: Applies currently holding (or waiting on) the lock; an entry
    #: with ``busy > 0`` is never evicted.
    busy: int = 0
    applies: int = 0
    columns_served: int = 0


class OperatorPool:
    """LRU pool of built operators, keyed by operator fingerprint."""

    def __init__(self, executor, max_systems: int = 8):
        if max_systems < 1:
            raise ConfigurationError(
                f"max_systems must be >= 1, got {max_systems}")
        self._executor = executor
        self.max_systems = max_systems
        self._entries: "OrderedDict[str, OperatorEntry]" = OrderedDict()
        self._flight = SingleFlight()
        self.builds = 0

    def __len__(self) -> int:
        return len(self._entries)

    async def acquire(self, key: str, spec: SystemSpec) -> OperatorEntry:
        """The resident entry for ``key``, building it on first use."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry

        async def build() -> OperatorEntry:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            loop = asyncio.get_running_loop()
            with obs.span("serve.build_operator", n=spec.n,
                          fingerprint=key[:12]):
                operator, cache = await loop.run_in_executor(
                    self._executor, build_operator, spec)
            self.builds += 1
            built = OperatorEntry(key=key, operator=operator, cache=cache)
            self._entries[key] = built
            self._evict()
            return built

        return await self._flight.run(f"build:{key}", build)

    def _evict(self) -> None:
        """Drop least-recently-used idle entries beyond the bound."""
        while len(self._entries) > self.max_systems:
            victim = next((k for k, e in self._entries.items()
                           if e.busy == 0), None)
            if victim is None:
                return  # everything busy: allow temporary overshoot
            del self._entries[victim]

    def stats(self) -> dict[str, Any]:
        return {"resident": len(self._entries),
                "max_systems": self.max_systems, "builds": self.builds,
                "systems": [
                    {"fingerprint": e.key[:12], "n": e.operator.n,
                     "applies": e.applies,
                     "columns_served": e.columns_served,
                     "mobility_cache": e.cache.stats()}
                    for e in self._entries.values()]}


@dataclass
class _Item:
    """One queued mobility request (its columns + completion future)."""

    spec: SystemSpec
    forces: np.ndarray           # (3n, s), validated
    future: asyncio.Future
    enqueued_at: float


@dataclass
class _Window:
    """The open batch window of one operator key."""

    items: list[_Item] = field(default_factory=list)
    columns: int = 0
    timer: Any = None


class MobilityBatcher:
    """Max-batch / max-wait microbatching scheduler.

    Parameters
    ----------
    pool:
        Operator pool the batches are applied against.
    executor:
        Thread pool (from an :class:`~repro.exec.ExecutionContext`)
        running the CPU-bound applies off the event loop.
    max_batch:
        Column count that flushes a window immediately.
    max_wait:
        Seconds the first request of a window waits for company.
    """

    def __init__(self, pool: OperatorPool, executor,
                 max_batch: int = 8, max_wait: float = 2e-3):
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ConfigurationError(
                f"max_wait must be >= 0, got {max_wait}")
        self.pool = pool
        self._executor = executor
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._windows: dict[str, _Window] = {}
        self._inflight: set[asyncio.Task] = set()
        #: Columns admitted and not yet answered (queued + executing);
        #: the admission controller sheds against this.
        self.backlog_columns = 0
        self.batches_flushed = 0
        self.requests_batched = 0

    # -- submission ------------------------------------------------------

    async def submit(self, spec: SystemSpec, forces: np.ndarray
                     ) -> np.ndarray:
        """Queue one request; resolves to its ``(3n, s)`` velocities."""
        if forces.ndim != 2 or forces.shape[0] != 3 * spec.n:
            raise ProtocolError(
                f"forces must have shape (3n, s) = ({3 * spec.n}, s), "
                f"got {forces.shape}")
        loop = asyncio.get_running_loop()
        key = spec.operator_key()
        window = self._windows.get(key)
        if window is None:
            window = _Window()
            self._windows[key] = window
            if self.max_wait > 0:
                window.timer = loop.call_later(
                    self.max_wait, self._flush, key)
        item = _Item(spec=spec, forces=forces,
                     future=loop.create_future(), enqueued_at=now())
        window.items.append(item)
        window.columns += forces.shape[1]
        self.backlog_columns += forces.shape[1]
        self.requests_batched += 1
        obs.set_gauge("serve_queue_depth",
                      self.backlog_columns, queue="mobility")
        if window.columns >= self.max_batch or self.max_wait == 0:
            self._flush(key)
        return await item.future

    # -- flushing --------------------------------------------------------

    def _flush(self, key: str) -> None:
        """Close the window of ``key`` and start its batch apply."""
        window = self._windows.pop(key, None)
        if window is None or not window.items:
            return
        if window.timer is not None:
            window.timer.cancel()
        task = asyncio.get_running_loop().create_task(
            self._run_batch(key, window.items))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, key: str, items: list[_Item]) -> None:
        loop = asyncio.get_running_loop()
        columns = sum(item.forces.shape[1] for item in items)
        registry = obs.get_metrics()
        if registry is not None:
            registry.histogram(
                "serve_batch_occupancy",
                help="columns per flushed apply_block",
                buckets=_OCCUPANCY_BUCKETS).observe(columns)
            registry.histogram(
                "serve_batch_requests",
                help="requests per flushed apply_block",
                buckets=_OCCUPANCY_BUCKETS).observe(len(items))
            wait_hist = registry.histogram(
                "serve_batch_wait_seconds",
                help="in-queue wait before the batch flushed",
                buckets=_WAIT_BUCKETS)
            t_flush = now()
            for item in items:
                wait_hist.observe(max(0.0, t_flush - item.enqueued_at))
        entry = None
        try:
            entry = await self.pool.acquire(key, items[0].spec)
            entry.busy += 1
            try:
                async with entry.lock:
                    block = (items[0].forces if len(items) == 1
                             else np.concatenate(
                                 [item.forces for item in items], axis=1))
                    with obs.span("serve.apply_block", vectors=columns,
                                  requests=len(items),
                                  fingerprint=key[:12]):
                        velocities = await loop.run_in_executor(
                            self._executor, entry.operator.apply_block,
                            block)
            finally:
                entry.busy -= 1
            entry.applies += 1
            entry.columns_served += columns
            offset = 0
            for item in items:
                s = item.forces.shape[1]
                if not item.future.done():
                    # slice copies: the batch buffer must not be pinned
                    # by response lifetimes
                    item.future.set_result(
                        np.ascontiguousarray(
                            velocities[:, offset:offset + s]))
                offset += s
        except Exception as exc:  # noqa: RPR006 - request boundary: the
            # exception is classified and transported to every waiting
            # request future; the dispatch layer re-raises it per client
            kind = classify_exception(exc)
            obs.inc("serve_batch_failures_total", kind=kind.value)
            for item in items:
                if not item.future.done():
                    item.future.set_exception(exc)
        finally:
            self.backlog_columns -= columns
            obs.set_gauge("serve_queue_depth",
                          self.backlog_columns, queue="mobility")
            self.batches_flushed += 1

    # -- lifecycle -------------------------------------------------------

    async def drain(self) -> None:
        """Flush every open window and wait for in-flight batches."""
        for key in list(self._windows):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)

    def stats(self) -> dict[str, Any]:
        return {"backlog_columns": self.backlog_columns,
                "open_windows": len(self._windows),
                "inflight_batches": len(self._inflight),
                "batches_flushed": self.batches_flushed,
                "requests_batched": self.requests_batched,
                "max_batch": self.max_batch, "max_wait": self.max_wait}
