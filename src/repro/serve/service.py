"""The serve front door: asyncio JSON-lines server over a local socket.

One :class:`SimulationService` owns the whole serving stack:

* an :class:`~repro.exec.ExecutionContext` thread pool that runs all
  CPU-bound work (operator builds, batched applies) off the event
  loop — the loop itself only parses, schedules and writes, so slow
  physics never blocks accepting connections (lint rule RPR012 keeps
  it that way);
* the :class:`~repro.serve.batching.MobilityBatcher` +
  :class:`~repro.serve.batching.OperatorPool` coalescing short
  ``mobility.apply`` requests into block applies;
* the :class:`~repro.serve.jobs.JobManager` dispatching ``simulate``
  requests to Supervisor campaigns with progress streaming;
* the :class:`~repro.serve.admission.AdmissionController` shedding
  load before anything is queued;
* the :class:`~repro.serve.cache.ResultCache` +
  :class:`~repro.serve.cache.SingleFlight` making repeated and
  concurrent identical requests cost one computation.

Every request runs under an :mod:`repro.obs` span carrying a trace id
(``<client>-<request id>``), increments
``serve_requests_total{op, outcome}`` and lands in the per-op latency
histogram whose p50/p90/p99 the ``stats`` op reports.

The server listens on a Unix socket (``socket_path``) or a local TCP
port; :meth:`SimulationService.run_forever` wires SIGTERM/SIGINT to a
graceful stop through :class:`~repro.runtime.signals.GracefulShutdown`
(nest-safe: inner ensemble drains stack under the serve loop's
handler).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from dataclasses import asdict, dataclass, field
from typing import Any

from .. import obs
from ..config import get_config
from ..errors import ConfigurationError
from ..exec import ExecutionContext
from ..resilience import classify_exception
from ..runtime.signals import GracefulShutdown
from .admission import AdmissionController
from .batching import MobilityBatcher, OperatorPool
from .cache import ResultCache, SingleFlight
from .jobs import JobManager
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL,
    ProtocolError,
    SystemSpec,
    decode_array,
    decode_line,
    encode_array,
    encode_message,
    error_response,
    ok_response,
    shed_response,
    validate_request,
)

__all__ = ["ServeSettings", "SimulationService"]

#: Latency buckets (seconds) fine enough for sub-millisecond applies
#: and coarse enough for multi-second simulate jobs.
_LATENCY_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
                    1.0, 3.0, 10.0, 30.0)

#: Hard cap on simulate steps per request (a served campaign is a
#: bounded job, not an open-ended run).
MAX_STEPS = 1_000_000


@dataclass
class ServeSettings:
    """Tunable knobs of one service instance."""

    socket_path: str | None = None
    host: str = "127.0.0.1"
    port: int = 0                 # 0: ephemeral, reported by endpoint()
    max_batch: int = 8
    max_wait: float = 2e-3
    max_queue_columns: int = 64
    max_inflight: int = 8
    max_jobs: int = 2
    max_systems: int = 8
    compute_threads: int = 0      # 0: RuntimeConfig resolved count
    sim_workers: int = 1
    cache_entries: int = 256
    cache_ttl: float | None = 600.0
    work_dir: str = "serve-jobs"
    progress_poll: float = 0.05

    def to_json(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class _ClientState:
    """Per-connection bookkeeping."""

    client_id: int
    writer: asyncio.StreamWriter
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    inflight: int = 0
    closed: bool = False
    #: request id -> (job, progress queue, forwarder task)
    jobs: dict[str, tuple[Any, asyncio.Queue, asyncio.Task]] = field(
        default_factory=dict)
    tasks: set = field(default_factory=set)


class SimulationService:
    """The serving stack behind one listening socket."""

    def __init__(self, settings: ServeSettings | None = None):
        self.settings = settings or ServeSettings()
        s = self.settings
        workers = (s.compute_threads if s.compute_threads > 0
                   else get_config().resolved_workers())
        # RPR011: the thread pool is owned by an ExecutionContext
        self._context = ExecutionContext("threads", workers=workers)
        self._executor = self._context.thread_pool()
        self.pool = OperatorPool(self._executor,
                                 max_systems=s.max_systems)
        self.batcher = MobilityBatcher(self.pool, self._executor,
                                       max_batch=s.max_batch,
                                       max_wait=s.max_wait)
        self.admission = AdmissionController(
            max_queue_columns=s.max_queue_columns,
            max_inflight=s.max_inflight, max_jobs=s.max_jobs)
        self.cache = ResultCache(max_entries=s.cache_entries,
                                 ttl=s.cache_ttl)
        self.flight = SingleFlight()
        self.jobs = JobManager(s.work_dir, self._executor,
                               max_jobs=s.max_jobs,
                               sim_workers=s.sim_workers,
                               progress_poll=s.progress_poll)
        os.makedirs(s.work_dir, exist_ok=True)
        self._server: asyncio.AbstractServer | None = None
        self._clients: dict[int, _ClientState] = {}
        self._next_client = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._background: set = set()
        self._installed_metrics = False
        self.requests_total = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        if obs.get_metrics() is None:
            # stats/latency quantiles need a registry even when the
            # caller did not enable observability
            obs.set_metrics(obs.MetricsRegistry())
            self._installed_metrics = True
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self.settings.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.settings.socket_path,
                limit=MAX_LINE_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.settings.host,
                port=self.settings.port, limit=MAX_LINE_BYTES)

    def endpoint(self) -> dict[str, Any]:
        """Where the server is reachable (resolved ephemeral port)."""
        if self._server is None:
            raise ConfigurationError("service is not started")
        if self.settings.socket_path is not None:
            return {"socket_path": self.settings.socket_path}
        address = self._server.sockets[0].getsockname()
        return {"host": address[0], "port": address[1]}

    async def stop(self) -> None:
        """Stop accepting, drain batches and jobs, release pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.drain()
        await self.jobs.drain_all()
        if self._background:
            await asyncio.gather(*list(self._background),
                                 return_exceptions=True)
        for state in list(self._clients.values()):
            state.closed = True
            with contextlib.suppress(OSError):
                state.writer.close()
        self._clients.clear()
        self._context.close()
        if self._installed_metrics:
            obs.set_metrics(None)
            self._installed_metrics = False

    def request_stop(self) -> None:
        """Ask the serve loop to exit (signal/thread safe)."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    async def serve_until_stopped(self) -> None:
        """Start, run until :meth:`request_stop`, then stop."""
        await self.start()
        stop_event = self._stop_event
        if stop_event is None:  # pragma: no cover - start() always sets it
            raise ConfigurationError("service failed to start")
        await stop_event.wait()
        await self.stop()

    def run_forever(self) -> None:
        """Blocking entry point with signal-driven graceful stop."""
        with GracefulShutdown(
                on_signal=lambda _name: self.request_stop()):
            asyncio.run(self.serve_until_stopped())

    # -- connection handling ---------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._next_client += 1
        state = _ClientState(client_id=self._next_client, writer=writer)
        self._clients[state.client_id] = state
        obs.set_gauge("serve_clients", len(self._clients))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(state, error_response(
                        {}, "config", "line exceeds protocol limit"))
                    break
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._dispatch(state, line))
                state.tasks.add(task)
                task.add_done_callback(state.tasks.discard)
        finally:
            state.closed = True
            self._clients.pop(state.client_id, None)
            obs.set_gauge("serve_clients", len(self._clients))
            self._abandon_jobs(state)
            with contextlib.suppress(OSError):
                writer.close()

    def _abandon_jobs(self, state: _ClientState) -> None:
        """Disconnect cleanup: drain jobs nobody is watching anymore."""
        for job, queue, forwarder in state.jobs.values():
            forwarder.cancel()
            job.unsubscribe(queue)
            if job.subscribers == 0 and job.state == "running":
                obs.inc("serve_jobs_abandoned_total")
                job.cancel()
        state.jobs.clear()

    async def _send(self, state: _ClientState,
                    message: dict[str, Any]) -> bool:
        """Write one line; returns False once the peer is gone."""
        if state.closed:
            return False
        try:
            async with state.lock:
                state.writer.write(encode_message(message))
                await state.writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            state.closed = True
            return False

    # -- request dispatch ------------------------------------------------

    async def _dispatch(self, state: _ClientState, line: bytes) -> None:
        from ..utils.timing import now

        t0 = now()
        self.requests_total += 1
        try:
            message = decode_line(line)
            op = validate_request(message)
        except ProtocolError as exc:
            self._finish(None, "protocol_error", t0)
            await self._send(state, error_response(
                {"id": None}, "config", str(exc)))
            return
        trace_id = f"c{state.client_id}-{message['id']}"
        outcome = "error"
        state.inflight += 1
        try:
            with obs.span("serve.request", op=op, trace_id=trace_id,
                          client=state.client_id):
                response, outcome = await self._answer(state, message, op)
            await self._send(state, response)
        except ProtocolError as exc:
            outcome = "invalid"
            await self._send(state, error_response(
                message, "config", str(exc)))
        except Exception as exc:  # noqa: RPR006 - protocol boundary:
            # the classified failure *is* the error response; raising
            # would tear down the connection for the other requests
            kind = classify_exception(exc)
            outcome = "error"
            await self._send(state, error_response(
                message, kind.value, str(exc)))
        finally:
            state.inflight -= 1
            self._finish(op, outcome, t0)

    def _finish(self, op: str | None, outcome: str, t0: float) -> None:
        from ..utils.timing import now

        obs.inc("serve_requests_total", op=op or "invalid",
                outcome=outcome)
        registry = obs.get_metrics()
        if registry is not None and op is not None:
            registry.histogram(
                "serve_request_seconds",
                help="request latency by op",
                buckets=_LATENCY_BUCKETS, op=op).observe(now() - t0)

    async def _answer(self, state: _ClientState,
                      message: dict[str, Any],
                      op: str) -> tuple[dict[str, Any], str]:
        """Compute the (response, outcome) of one admitted request."""
        if op == "ping":
            return ok_response(message, {
                "protocol": PROTOCOL, "settings": self.settings.to_json(),
                "fingerprint_knobs": {
                    "no_ckernel": get_config().no_ckernel}}), "ok"
        if op == "stats":
            return ok_response(message, self.stats()), "ok"
        shed = self.admission.check_inflight(state.inflight - 1)
        if shed is not None:
            return shed_response(message, shed.reason,
                                 shed.retry_after), "shed"
        if op == "mobility.apply":
            return await self._answer_mobility(message)
        if op == "simulate":
            return await self._answer_simulate(state, message)
        if op == "cancel":
            return self._answer_cancel(state, message)
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    # -- mobility.apply --------------------------------------------------

    async def _answer_mobility(self, message: dict[str, Any]
                               ) -> tuple[dict[str, Any], str]:
        import hashlib

        spec = SystemSpec.from_json(message.get("system"))
        forces = decode_array(message.get("forces"), "forces")
        flat = forces.ndim == 1
        if flat:
            forces = forces.reshape(-1, 1)
        if forces.ndim != 2 or forces.shape[0] != 3 * spec.n:
            raise ProtocolError(
                f"forces must have shape (3n,) or (3n, s) with "
                f"n={spec.n}, got {forces.shape}")
        columns = forces.shape[1]
        shed = self.admission.check_mobility(
            columns, self.batcher.backlog_columns)
        if shed is not None:
            return shed_response(message, shed.reason,
                                 shed.retry_after), "shed"
        fingerprint = spec.fingerprint()
        force_digest = hashlib.sha256(
            forces.tobytes()).hexdigest()[:32]
        key = f"mob:{fingerprint}:{force_digest}"
        cached = self.cache.get(key)
        if cached is not None:
            return ok_response(message, {**cached, "cached": True}), "ok"

        async def compute() -> dict[str, Any]:
            velocities = await self.batcher.submit(spec, forces)
            result = {
                "velocities": encode_array(
                    velocities[:, 0] if flat else velocities),
                "fingerprint": fingerprint}
            self.cache.put(key, result)
            return result

        result = await self.flight.run(key, compute)
        return ok_response(message, {**result, "cached": False}), "ok"

    # -- simulate --------------------------------------------------------

    async def _answer_simulate(self, state: _ClientState,
                               message: dict[str, Any]
                               ) -> tuple[dict[str, Any], str]:
        spec = SystemSpec.from_json(message.get("system"))
        try:
            seed = int(message.get("seed", 0))
            steps = int(message["steps"])
        except (KeyError, TypeError, ValueError):
            raise ProtocolError(
                "simulate needs integer 'steps' (and optional 'seed')"
            ) from None
        if not 1 <= steps <= MAX_STEPS:
            raise ProtocolError(
                f"steps must be in [1, {MAX_STEPS}], got {steps}")
        key = f"sim:{spec.fingerprint()}:{seed}:{steps}"
        cached = self.cache.get(key)
        if cached is not None:
            return ok_response(message, {**cached, "cached": True}), "ok"
        job = self.jobs.get(key)
        if job is None:
            shed = self.admission.check_simulate(len(self.jobs.active))
            if shed is not None:
                return shed_response(message, shed.reason,
                                     shed.retry_after), "shed"
            job = await self.jobs.launch(key, spec, seed, steps)
            finalizer = asyncio.get_running_loop().create_task(
                self._finalize_job(key, job))
            self._background.add(finalizer)
            finalizer.add_done_callback(self._background.discard)
        queue = job.subscribe()
        request_id = str(message["id"])
        forwarder = asyncio.get_running_loop().create_task(
            self._forward_events(state, message, queue))
        state.jobs[request_id] = (job, queue, forwarder)
        try:
            result = await job.wait()
        finally:
            forwarder.cancel()
            job.unsubscribe(queue)
            state.jobs.pop(request_id, None)
        if result["state"] == "failed":
            return error_response(message, str(result.get("kind")),
                                  str(result.get("message"))), "error"
        return ok_response(message, {**result, "cached": False}), "ok"

    async def _finalize_job(self, key: str, job: Any) -> None:
        """Cache and retire a job independently of its subscribers."""
        result = await job.wait()
        if result["state"] == "done":
            self.cache.put(key, result)
        self.jobs.finish(key)

    async def _forward_events(self, state: _ClientState,
                              message: dict[str, Any],
                              queue: asyncio.Queue) -> None:
        while True:
            event = await queue.get()
            if event.get("event") == "end":
                return
            sent = await self._send(state, {
                "id": message.get("id"), "op": message.get("op"),
                **event})
            if not sent:
                return

    def _answer_cancel(self, state: _ClientState,
                       message: dict[str, Any]
                       ) -> tuple[dict[str, Any], str]:
        target = message.get("target")
        if target is None:
            raise ProtocolError("cancel needs 'target' (a request id)")
        entry = state.jobs.get(str(target))
        if entry is None:
            # the issuing connection is usually *blocked* in its own
            # simulate request, so cancels arrive on a second
            # connection; the socket is local and trusted
            for other in self._clients.values():
                entry = other.jobs.get(str(target))
                if entry is not None:
                    break
        if entry is None:
            raise ProtocolError(
                f"no running simulate request {target!r}")
        job = entry[0]
        job.cancel()
        return ok_response(message, {
            "cancelling": True, "state": job.state,
            "completed_step": job.to_json()["completed_step"]}), "ok"

    # -- stats -----------------------------------------------------------

    def _latency_stats(self) -> dict[str, Any]:
        registry = obs.get_metrics()
        if registry is None:
            return {}
        family = registry._families.get("serve_request_seconds")
        if family is None:
            return {}
        out: dict[str, Any] = {}
        for labels, histogram in family.series.items():
            op = dict(labels).get("op", "?")
            out[op] = {
                "count": histogram.count,
                "mean_s": histogram.mean,
                "p50_s": histogram.quantile(0.5),
                "p90_s": histogram.quantile(0.9),
                "p99_s": histogram.quantile(0.99)}
        return out

    def stats(self) -> dict[str, Any]:
        """The ``stats`` op payload (also useful in-process)."""
        return {"protocol": PROTOCOL,
                "requests_total": self.requests_total,
                "clients": len(self._clients),
                "batcher": self.batcher.stats(),
                "operators": self.pool.stats(),
                "admission": self.admission.stats(),
                "cache": self.cache.to_json(),
                "single_flight": {"active": self.flight.active(),
                                  "joined": self.flight.joined},
                "jobs": self.jobs.stats(),
                "latency": self._latency_stats()}
