"""Admission control: bounded queues, per-client caps, load shedding.

The service never buffers unboundedly.  Every request is checked
*before* it is queued, against three independent budgets:

* **queue depth** — the batcher's backlog (columns admitted and not
  yet answered) is capped; a full queue sheds instead of growing;
* **per-client in-flight** — one connection may hold at most
  ``max_inflight`` unanswered requests, so a single aggressive client
  cannot monopolize the queue budget;
* **concurrent jobs** — at most ``max_jobs`` simulate campaigns run
  at once (each owns worker processes; oversubscription would slow
  every job below its deadline rather than finish any).

A refused request gets a ``shed`` response carrying ``retry_after``
seconds — the Retry-After discipline: the *client* backs off and
retries; the *server's* memory stays bounded no matter the offered
load.  The hint scales with how oversubscribed the refused budget is,
so a deeper backlog spreads retries further apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..errors import ConfigurationError

__all__ = ["Shed", "AdmissionController"]


@dataclass(frozen=True)
class Shed:
    """A refusal: why, and when the client should try again."""

    reason: str
    retry_after: float


class AdmissionController:
    """Stateless budget checks against live service counters.

    Parameters
    ----------
    max_queue_columns:
        Mobility backlog bound (queued + executing columns).
    max_inflight:
        Unanswered requests allowed per connection.
    max_jobs:
        Concurrent simulate campaigns allowed.
    base_retry_after:
        Retry-After floor in seconds; the hint grows linearly with
        the overload factor of the refused budget.
    """

    def __init__(self, max_queue_columns: int = 64,
                 max_inflight: int = 8, max_jobs: int = 2,
                 base_retry_after: float = 0.05):
        for name, value in (("max_queue_columns", max_queue_columns),
                            ("max_inflight", max_inflight),
                            ("max_jobs", max_jobs)):
            if value < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {value}")
        if base_retry_after <= 0:
            raise ConfigurationError(
                f"base_retry_after must be positive, got "
                f"{base_retry_after}")
        self.max_queue_columns = max_queue_columns
        self.max_inflight = max_inflight
        self.max_jobs = max_jobs
        self.base_retry_after = base_retry_after
        self.shed_total = 0

    def _shed(self, reason: str, load_factor: float) -> Shed:
        self.shed_total += 1
        obs.inc("serve_shed_total", reason=reason)
        return Shed(reason=reason,
                    retry_after=self.base_retry_after
                    * (1.0 + max(0.0, load_factor)))

    def check_inflight(self, client_inflight: int) -> Shed | None:
        """Per-connection cap, applied to every queued op."""
        if client_inflight >= self.max_inflight:
            return self._shed("client_inflight",
                              client_inflight / self.max_inflight)
        return None

    def check_mobility(self, columns: int, backlog: int) -> Shed | None:
        """Queue-depth budget for one mobility request.

        A single request wider than the whole budget is refused as
        ``oversized`` (it could never be admitted, so no retry hint
        softening applies).
        """
        if columns > self.max_queue_columns:
            return self._shed("oversized", 0.0)
        if backlog + columns > self.max_queue_columns:
            return self._shed("queue_full",
                              backlog / self.max_queue_columns)
        return None

    def check_simulate(self, active_jobs: int) -> Shed | None:
        """Concurrent-campaign budget for one simulate request."""
        if active_jobs >= self.max_jobs:
            # campaigns run for seconds, not milliseconds: hint at a
            # coarser retry than the mobility path
            return self._shed("jobs_full",
                              20.0 * active_jobs / self.max_jobs)
        return None

    def stats(self) -> dict[str, float | int]:
        return {"max_queue_columns": self.max_queue_columns,
                "max_inflight": self.max_inflight,
                "max_jobs": self.max_jobs,
                "shed_total": self.shed_total}
