"""``repro.serve`` — the batched simulation service (front door).

The serving stack turns the one-shot CLI machinery into a long-lived
local service: short ``mobility.apply`` requests are coalesced across
clients into single :meth:`~repro.pme.operator.PMEOperator.apply_block`
calls (the paper's Section IV.E block-of-vectors economics applied to
*traffic* instead of a single caller), long ``simulate`` jobs run as
supervised single-task campaigns with progress streaming and graceful
cancellation, and everything is guarded by admission control and a
deterministic result cache.  See ``docs/api.md`` ("Serving") for the
protocol and semantics.
"""

from .admission import AdmissionController, Shed
from .batching import MobilityBatcher, OperatorPool
from .cache import ResultCache, SingleFlight
from .client import ServeClient, ServeRequestError, ServerBusy
from .jobs import JobManager, SimulateJob
from .protocol import PROTOCOL, ProtocolError, SystemSpec
from .service import ServeSettings, SimulationService

__all__ = [
    "PROTOCOL", "ProtocolError", "SystemSpec",
    "ResultCache", "SingleFlight",
    "OperatorPool", "MobilityBatcher",
    "AdmissionController", "Shed",
    "JobManager", "SimulateJob",
    "ServeSettings", "SimulationService",
    "ServeClient", "ServerBusy", "ServeRequestError",
]
