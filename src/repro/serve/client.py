"""Synchronous client library for the ``repro-serve/1`` protocol.

A thin blocking wrapper around one socket connection — the shape a
driver script or the ``repro submit`` CLI wants.  The client speaks
the same JSON-lines framing as the server, decodes streamed
``progress`` events into an optional callback, and turns the three
response statuses into Python results:

* ``ok``     — the ``result`` payload (arrays decoded to ``float64``);
* ``shed``   — :class:`ServerBusy` carrying ``retry_after``; the
  convenience methods honor it automatically up to ``max_retries``
  times (honest Retry-After clients are what makes load shedding a
  stable equilibrium rather than a retry storm);
* ``error``  — :class:`ServeRequestError` with the failure kind.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Any, Callable

import numpy as np

from ..errors import ReproError
from .protocol import (
    MAX_LINE_BYTES,
    SystemSpec,
    decode_array,
    encode_array,
    encode_message,
)

__all__ = ["ServeClient", "ServerBusy", "ServeRequestError"]


class ServerBusy(ReproError):
    """The server shed the request; retry after ``retry_after`` s."""

    def __init__(self, reason: str, retry_after: float):
        super().__init__(f"server busy ({reason}); "
                         f"retry after {retry_after}s")
        self.reason = reason
        self.retry_after = retry_after


class ServeRequestError(ReproError):
    """The server answered ``status: error``."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class ServeClient:
    """One blocking connection to a serve endpoint.

    Parameters
    ----------
    socket_path:
        Unix socket path (preferred for local serving).
    host, port:
        TCP endpoint, used when ``socket_path`` is ``None``.
    timeout:
        Socket timeout in seconds for connect and each response line.
    max_retries:
        How many times the convenience methods re-send a request the
        server shed, sleeping the advertised ``retry_after`` between
        attempts.  ``0`` surfaces :class:`ServerBusy` immediately.
    """

    def __init__(self, socket_path: str | None = None,
                 host: str = "127.0.0.1", port: int | None = None,
                 timeout: float = 120.0, max_retries: int = 0):
        if socket_path is None and port is None:
            raise ReproError(
                "ServeClient needs socket_path or host+port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self._sock: socket.socket | None = None
        self._file: Any = None
        self._seq = 0

    # -- connection ------------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, int(self.port or 0)), timeout=self.timeout)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        self.connect()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- raw request/response --------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return f"{os.getpid()}-{self._seq}"

    def request(self, payload: dict[str, Any],
                on_event: Callable[[dict[str, Any]], None] | None = None
                ) -> dict[str, Any]:
        """Send one request; stream events; return the final response.

        Raises :class:`ServerBusy` on ``shed`` and
        :class:`ServeRequestError` on ``error`` — ``ok`` responses
        come back whole (the caller reads ``result``).
        """
        self.connect()
        if self._sock is None or self._file is None:
            raise ReproError("client is not connected")
        if "id" not in payload:
            payload = {**payload, "id": self._next_id()}
        self._sock.sendall(encode_message(payload))
        while True:
            line = self._file.readline(MAX_LINE_BYTES + 1)
            if not line:
                raise ReproError("server closed the connection")
            message = json.loads(line)
            if "event" in message:
                if on_event is not None:
                    on_event(message)
                continue
            status = message.get("status")
            if status == "ok":
                return message
            if status == "shed":
                raise ServerBusy(str(message.get("reason")),
                                 float(message.get("retry_after", 0.0)))
            raise ServeRequestError(str(message.get("kind")),
                                    str(message.get("message")))

    def _with_retries(self, make_payload: Callable[[], dict[str, Any]],
                      on_event=None) -> dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self.request(make_payload(), on_event=on_event)
            except ServerBusy as busy:
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                time.sleep(busy.retry_after)

    # -- convenience ops -------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})["result"]

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})["result"]

    def mobility_apply(self, system: SystemSpec | dict[str, Any],
                       forces: np.ndarray) -> np.ndarray:
        """Served ``M @ forces``; bit-identical to a direct apply.

        ``forces`` may be ``(3n,)`` or ``(3n, s)``; the result has the
        same shape.
        """
        system_json = (system.to_json()
                       if isinstance(system, SystemSpec) else system)
        response = self._with_retries(lambda: {
            "op": "mobility.apply", "system": system_json,
            "forces": encode_array(np.asarray(forces, dtype=np.float64))})
        return decode_array(response["result"]["velocities"],
                            "velocities")

    def simulate(self, system: SystemSpec | dict[str, Any], *,
                 steps: int, seed: int = 0,
                 on_progress: Callable[[int, int], None] | None = None,
                 request_id: str | None = None) -> dict[str, Any]:
        """Run (or join, or hit the cache of) a served simulation.

        Returns the terminal result — ``state`` is ``"done"`` (with
        the final-position ``digest``) or ``"drained"``.  Pass an
        explicit ``request_id`` to be able to :meth:`cancel` the run
        from a *second* connection (this one blocks until terminal).
        """
        system_json = (system.to_json()
                       if isinstance(system, SystemSpec) else system)

        def forward(event: dict[str, Any]) -> None:
            if on_progress is not None and event.get("event") == "progress":
                on_progress(int(event["step"]), int(event["of"]))

        def payload() -> dict[str, Any]:
            message: dict[str, Any] = {
                "op": "simulate", "system": system_json,
                "steps": int(steps), "seed": int(seed)}
            if request_id is not None:
                message["id"] = request_id
            return message

        response = self._with_retries(payload, on_event=forward)
        return response["result"]

    def cancel(self, target: str) -> dict[str, Any]:
        """Cancel a running simulate request (by its request id)."""
        return self.request({"op": "cancel",
                             "target": target})["result"]
