"""Long-running ``simulate`` jobs dispatched to the ensemble Supervisor.

A served simulation is exactly one single-task campaign of the
:mod:`repro.runtime` machinery: the :class:`SystemSpec` plus the
request's ``seed``/``steps`` deterministically define a
:class:`~repro.runtime.tasks.TaskSpec` (PME parameters are tuned
explicitly up front, so the spec — not a hidden default — pins the
operator), and a :class:`~repro.runtime.supervisor.Supervisor` drives
it in worker processes with the full fault story: block-aligned
checkpoints, restart-with-backoff, hang watchdog, graceful drain.

Everything the runtime guarantees transfers to the service for free:

* **progress streaming** — the supervisor's task record advances
  ``completed_step`` on every checkpoint message; an asyncio poller
  publishes those advances to every subscribed client as ``progress``
  events;
* **graceful cancellation** — ``cancel`` (or the last interested
  client disconnecting) calls
  :meth:`~repro.runtime.supervisor.Supervisor.request_drain`; the
  task stops at the next ``lambda_RPY`` block boundary with a durable
  checkpoint, and a later identical request *resumes* from it
  bit-identically instead of starting over;
* **deduplication** — jobs are keyed by (fingerprint, seed, steps);
  concurrent identical requests subscribe to the one running job.

The terminal result (the final-position digest) is what lands in the
service's :class:`~repro.serve.cache.ResultCache` — its bytes equal a
direct :class:`~repro.core.simulation.Simulation` run of the same
recipe, the contract the test suite pins.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any

from .. import obs
from ..errors import ConfigurationError
from ..resilience import classify_exception
from ..runtime.supervisor import Supervisor
from ..runtime.tasks import CampaignManifest, TaskSpec, TaskState
from ..utils.validation import require
from .protocol import SystemSpec

__all__ = ["SimulateJob", "JobManager", "task_spec_for"]


def task_spec_for(spec: SystemSpec, seed: int, steps: int) -> TaskSpec:
    """The deterministic single-task campaign spec of a request.

    PME parameters are tuned here (not left to the integrator's
    lazy default) so the task spec fully determines the operator —
    the served digest must be reproducible from the spec alone.
    """
    from ..pme.tuning import tune_parameters
    from ..systems.suspension import make_suspension

    suspension = make_suspension(spec.n, spec.phi, seed=spec.system_seed)
    params = tune_parameters(
        suspension.n, suspension.box, target_ep=spec.e_p, p=spec.p,
        fluid=suspension.fluid, interpolation=spec.interpolation,
        kernel=spec.kernel)
    return TaskSpec(task_id=0, n=spec.n, phi=spec.phi, n_steps=steps,
                    seed=seed, system_seed=spec.system_seed, dt=spec.dt,
                    lambda_rpy=spec.lambda_rpy, e_k=spec.e_k, pme=params,
                    forces=spec.forces)


class SimulateJob:
    """One running (or finished) served simulation."""

    def __init__(self, key: str, spec: SystemSpec, seed: int, steps: int,
                 job_dir: str, executor, *, sim_workers: int = 1,
                 progress_poll: float = 0.05):
        self.key = key
        self.spec = spec
        self.seed = seed
        self.steps = steps
        self.job_dir = job_dir
        self._executor = executor
        self._sim_workers = sim_workers
        self._progress_poll = progress_poll
        self.supervisor: Supervisor | None = None
        self.state = "pending"
        self.cancelled = False
        self._subscribers: list[asyncio.Queue] = []
        self._done: asyncio.Future | None = None
        self._runner: asyncio.Task | None = None

    # -- subscription ----------------------------------------------------

    @property
    def subscribers(self) -> int:
        return len(self._subscribers)

    def subscribe(self) -> asyncio.Queue:
        """A queue of ``progress`` events for one interested client."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    def _publish(self, event: dict[str, Any]) -> None:
        for queue in self._subscribers:
            queue.put_nowait(event)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Build the campaign and launch it on the executor."""
        loop = asyncio.get_running_loop()
        self._done = loop.create_future()
        manifest_path = os.path.join(self.job_dir, "campaign.json")
        records: Any = None
        if os.path.exists(manifest_path):
            manifest = CampaignManifest.load(manifest_path)
            if (manifest.resumable and len(manifest.tasks) == 1
                    and manifest.tasks[0].spec.n_steps == self.steps
                    and manifest.tasks[0].spec.seed == self.seed):
                records = manifest.tasks  # drained earlier: resume
        if records is None:
            task = await loop.run_in_executor(
                self._executor, task_spec_for,
                self.spec, self.seed, self.steps)
            records = [task]
        self.supervisor = Supervisor(
            records, self.job_dir, n_workers=self._sim_workers,
            manifest_path=manifest_path)
        self.state = "running"
        self._runner = loop.create_task(self._drive())

    async def _drive(self) -> None:
        require(self.supervisor is not None and self._done is not None,
                "job was not started")
        loop = asyncio.get_running_loop()
        record = self.supervisor.records[0]
        run = loop.run_in_executor(self._executor, self.supervisor.run)
        last_step = -1
        try:
            while not run.done():
                step = record.completed_step
                if step != last_step and step > 0:
                    last_step = step
                    self._publish({"event": "progress", "step": step,
                                   "of": self.steps})
                await asyncio.wait(
                    [run], timeout=self._progress_poll,
                    return_when=asyncio.FIRST_COMPLETED)
            report = run.result()
        except Exception as exc:  # noqa: RPR006 - job boundary: the
            # classified failure becomes the terminal result every
            # subscribed client receives as an error response
            kind = classify_exception(exc)
            self.state = "failed"
            result: dict[str, Any] = {
                "state": "failed", "kind": kind.value,
                "message": str(exc)}
            self._publish({"event": "end", **result})
            self._done.set_result(result)
            return
        step = record.completed_step
        if step != last_step and step > 0:
            # the run can finish between polls: publish the terminal
            # step so subscribers always see the final progress
            self._publish({"event": "progress", "step": step,
                           "of": self.steps})
        result = self._terminal_result(report, record)
        self.state = str(result["state"])
        self._publish({"event": "end", **result})
        self._done.set_result(result)

    def _terminal_result(self, report: Any,
                         record: Any) -> dict[str, Any]:
        if record.state is TaskState.DONE:
            return {"state": "done", "digest": record.digest,
                    "completed_step": record.completed_step,
                    "steps": self.steps, "safe_mode": record.safe_mode}
        if report.drained:
            return {"state": "drained",
                    "completed_step": record.completed_step,
                    "steps": self.steps, "resumable": True}
        failure = record.failure or {}
        return {"state": "failed",
                "kind": failure.get("kind", "unknown"),
                "message": failure.get("message", "task quarantined"),
                "completed_step": record.completed_step}

    async def wait(self) -> dict[str, Any]:
        """The terminal result; shields the job from caller cancel."""
        require(self._done is not None, "job was not started")
        return await asyncio.shield(self._done)

    def cancel(self) -> None:
        """Request a graceful drain at the next block boundary."""
        self.cancelled = True
        if self.supervisor is not None:
            self.supervisor.request_drain()
        obs.inc("serve_jobs_cancelled_total")

    def to_json(self) -> dict[str, Any]:
        step = (0 if self.supervisor is None
                else self.supervisor.records[0].completed_step)
        return {"key": self.key[:24], "state": self.state,
                "steps": self.steps, "completed_step": step,
                "subscribers": self.subscribers,
                "cancelled": self.cancelled}


class JobManager:
    """Owns the active simulate jobs (dedup + concurrency bound)."""

    def __init__(self, work_dir: str, executor, *, max_jobs: int = 2,
                 sim_workers: int = 1, progress_poll: float = 0.05):
        if max_jobs < 1:
            raise ConfigurationError(
                f"max_jobs must be >= 1, got {max_jobs}")
        self.work_dir = work_dir
        self._executor = executor
        self.max_jobs = max_jobs
        self.sim_workers = sim_workers
        self.progress_poll = progress_poll
        self.active: dict[str, SimulateJob] = {}
        self.started = 0
        self.deduplicated = 0

    def get(self, key: str) -> SimulateJob | None:
        """The running job for a key (dedup join), if any."""
        job = self.active.get(key)
        if job is not None:
            self.deduplicated += 1
        return job

    async def launch(self, key: str, spec: SystemSpec, seed: int,
                     steps: int) -> SimulateJob:
        """Start a new job; the caller must have admission-checked."""
        job_dir = os.path.join(self.work_dir,
                               f"{key[:16]}-{seed}-{steps}")
        os.makedirs(job_dir, exist_ok=True)
        job = SimulateJob(key, spec, seed, steps, job_dir,
                          self._executor, sim_workers=self.sim_workers,
                          progress_poll=self.progress_poll)
        self.active[key] = job
        self.started += 1
        obs.set_gauge("serve_active_jobs", len(self.active))
        try:
            await job.start()
        except Exception:
            self.active.pop(key, None)
            obs.set_gauge("serve_active_jobs", len(self.active))
            raise
        return job

    def finish(self, key: str) -> None:
        """Forget a terminal job (its result lives in the cache now)."""
        self.active.pop(key, None)
        obs.set_gauge("serve_active_jobs", len(self.active))

    async def drain_all(self) -> None:
        """Gracefully drain every active job (server shutdown)."""
        for job in list(self.active.values()):
            job.cancel()
        for job in list(self.active.values()):
            if job._done is not None:
                await job.wait()
        self.active.clear()
        obs.set_gauge("serve_active_jobs", 0)

    def stats(self) -> dict[str, Any]:
        return {"active": len(self.active), "max_jobs": self.max_jobs,
                "started": self.started,
                "deduplicated": self.deduplicated,
                "jobs": [job.to_json() for job in self.active.values()]}
