"""Block Compressed Sparse Row (BCSR) matrices with 3x3 blocks.

The RPY real-space operator couples particles through 3x3 tensors, so
its natural sparse format is CSR over *block* rows and columns with a
dense 3x3 payload per stored block (paper Section IV.C).  Key
operations:

* construction from a pair list (symmetric fill-in of both triangles),
* single-vector and multi-vector SpMV (``y = A x`` with ``x`` of shape
  ``(3n,)`` or ``(3n, s)``) — the multi-vector product is the kernel
  the block Krylov method relies on (paper reference [24]),
* true multi-RHS SpMM (:meth:`BlockCSR.matmat`): each 3x3 block is
  streamed once and multiplied against all ``s`` lanes, through the
  optional native kernel of :mod:`repro.sparse.kernels` when a C
  compiler is available (SciPy CSR otherwise),
* export to ``scipy.sparse`` CSR for a compiled backend,
* densification and memory accounting for the Fig. 7 comparisons.

Operands are normalized **once** at entry (dtype checked, a single
explicit C-contiguity conversion when the input is Fortran-ordered or
strided) — there are no repeated silent copies inside the product
loops.
"""

from __future__ import annotations

import itertools

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigurationError
from ..lint.contracts import force_block_arg
from .kernels import spmm_kernel, spmm_range_kernel

__all__ = ["BlockCSR"]

#: Instance counter namespacing shared-memory keys (processes backend).
_BCSR_SEQ = itertools.count()


class BlockCSR:
    """A square ``(3n, 3n)`` sparse matrix of dense 3x3 blocks.

    Parameters
    ----------
    n_block_rows:
        Number of block rows/columns ``n`` (the matrix is ``3n x 3n``).
    indptr:
        Block-row pointer array, shape ``(n + 1,)``.
    indices:
        Block-column indices, shape ``(nnzb,)``; **must** be sorted
        within each row (construction helpers guarantee this).
    blocks:
        Dense payloads, shape ``(nnzb, 3, 3)``.
    """

    def __init__(self, n_block_rows: int, indptr: np.ndarray,
                 indices: np.ndarray, blocks: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.intp)
        indices = np.asarray(indices, dtype=np.intp)
        blocks = np.ascontiguousarray(blocks, dtype=np.float64)
        if indptr.shape != (n_block_rows + 1,):
            raise ConfigurationError(
                f"indptr must have shape ({n_block_rows + 1},), got {indptr.shape}")
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise ConfigurationError("indptr is inconsistent with indices")
        if np.any(np.diff(indptr) < 0):
            raise ConfigurationError("indptr must be non-decreasing")
        if blocks.shape != (indices.shape[0], 3, 3):
            raise ConfigurationError(
                f"blocks must have shape (nnzb, 3, 3), got {blocks.shape}")
        if indices.size and (indices.min() < 0 or indices.max() >= n_block_rows):
            raise ConfigurationError("block column index out of range")
        self.n_block_rows = int(n_block_rows)
        self.indptr = indptr
        self.indices = indices
        self.blocks = blocks
        # Precompute the row id of every stored block for the SpMV
        # scatter (cheap: one intp per block).
        self._block_rows = np.repeat(np.arange(n_block_rows, dtype=np.intp),
                                     np.diff(indptr))
        # SpMM-path caches, materialized on first matmat call: int64
        # index views/copies for the native kernel and a scalar CSR
        # export for the SciPy fallback.
        self._indptr64: np.ndarray | None = None
        self._indices64: np.ndarray | None = None
        self._csr: sp.csr_matrix | None = None
        # processes-backend shared-memory registration (lazy)
        self._shm_prefix: str | None = None
        self._shm_static: dict = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_pairs(cls, n: int, i: np.ndarray, j: np.ndarray,
                   pair_blocks: np.ndarray,
                   diag_blocks: np.ndarray | None = None) -> "BlockCSR":
        """Build a symmetric BCSR matrix from a half pair list.

        Parameters
        ----------
        n:
            Number of particles (block rows).
        i, j:
            Pair indices with ``i != j`` (each unordered pair listed
            once; both triangles are filled automatically).
        pair_blocks:
            3x3 tensor for each pair, shape ``(m, 3, 3)``.  The block
            stored at ``(j, i)`` is the transpose of the one at
            ``(i, j)`` (the RPY tensor is symmetric, but transposition
            is applied regardless so general symmetric operators work).
        diag_blocks:
            Optional diagonal 3x3 blocks, shape ``(n, 3, 3)``; omitted
            diagonals are zero.
        """
        i = np.asarray(i, dtype=np.intp)
        j = np.asarray(j, dtype=np.intp)
        pair_blocks = np.asarray(pair_blocks, dtype=np.float64)
        if i.shape != j.shape or pair_blocks.shape != (i.size, 3, 3):
            raise ConfigurationError(
                "pair arrays must have matching shapes (m,), (m,), (m, 3, 3)")
        if np.any(i == j):
            raise ConfigurationError(
                "from_pairs expects off-diagonal pairs only; "
                "pass diagonal blocks via diag_blocks")

        rows = [i, j]
        cols = [j, i]
        payload = [pair_blocks, pair_blocks.transpose(0, 2, 1)]
        if diag_blocks is not None:
            diag_blocks = np.asarray(diag_blocks, dtype=np.float64)
            if diag_blocks.shape != (n, 3, 3):
                raise ConfigurationError(
                    f"diag_blocks must have shape ({n}, 3, 3), "
                    f"got {diag_blocks.shape}")
            rng = np.arange(n, dtype=np.intp)
            rows.append(rng)
            cols.append(rng)
            payload.append(diag_blocks)

        row = np.concatenate(rows)
        col = np.concatenate(cols)
        blk = np.concatenate(payload, axis=0)

        order = np.lexsort((col, row))
        row, col, blk = row[order], col[order], blk[order]
        counts = np.bincount(row, minlength=n)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(n, indptr, col, blk)

    # ------------------------------------------------------------------
    # products
    # ------------------------------------------------------------------

    def _normalized(self, x: np.ndarray) -> np.ndarray:
        """Normalize an operand once: float64 dtype, C-contiguous.

        Returns the input unchanged (no copy) when it already is a
        C-contiguous float64 array; otherwise performs **one** explicit
        conversion here rather than repeated silent copies inside the
        product loops.  Non-real dtypes are rejected.
        """
        x = np.asarray(x)
        if x.dtype != np.float64:
            if not (np.issubdtype(x.dtype, np.floating)
                    or np.issubdtype(x.dtype, np.integer)):
                raise ConfigurationError(
                    f"operand dtype must be real, got {x.dtype}")
            x = x.astype(np.float64)
        if x.shape[0] != 3 * self.n_block_rows:
            raise ConfigurationError(
                f"operand must have 3n = {3 * self.n_block_rows} rows, "
                f"got {x.shape[0]}")
        if not x.flags.c_contiguous:
            x = np.ascontiguousarray(x)
        return x

    @force_block_arg("x")
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse product ``y = A x`` for ``x`` of shape ``(3n,)`` or ``(3n, s)``.

        The multi-vector case computes all ``s`` products in one pass
        over the blocks (the paper's block-of-vectors SpMV).
        """
        n = self.n_block_rows
        x = self._normalized(x)
        flat = x.ndim == 1
        if flat:
            x = x[:, None]
        s = x.shape[1]
        xg = x.reshape(n, 3, s)
        y = np.zeros((n, 3, s))
        if self.indices.size:
            # one fused gather / 3x3-matmul / segmented-sum pass
            contrib = np.einsum("euv,evs->eus", self.blocks, xg[self.indices],
                                optimize=True)
            nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
            if nonempty.size:
                sums = np.add.reduceat(contrib, self.indptr[nonempty], axis=0)
                y[nonempty] = sums
        out = y.reshape(3 * n, s)
        return out[:, 0] if flat else out

    def _spmm_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Int64 index arrays for the native kernel (cached; on LP64
        platforms these are the stored ``intp`` arrays, not copies)."""
        if self._indptr64 is None:
            self._indptr64 = np.ascontiguousarray(self.indptr,
                                                  dtype=np.int64)
            self._indices64 = np.ascontiguousarray(self.indices,
                                                   dtype=np.int64)
        return self._indptr64, self._indices64

    @force_block_arg("x")
    def matmat(self, x: np.ndarray,
               context: "object | None" = None) -> np.ndarray:
        """Multi-RHS product ``Y = A X`` with ``X`` of shape ``(3n, s)``.

        Unlike :meth:`matvec` (and unlike SciPy's CSR ``matmat``, which
        loops the RHS columns one by one), this streams every stored
        3x3 block exactly once and multiplies it against all ``s``
        lanes while it is hot — the paper's Section IV.C "SpMV on
        blocks of vectors".  Uses the optional native kernel of
        :mod:`repro.sparse.kernels`; without a C compiler the SciPy
        CSR export is used instead (correct, less amortization).

        With a parallel :class:`~repro.exec.ExecutionContext` and the
        native kernel available, the product is chunked into
        contiguous block-row ranges across the context's workers.
        Row results are independent, so every partition is
        bit-identical to the serial product.
        """
        n = self.n_block_rows
        x = self._normalized(x)
        if x.ndim != 2:
            raise ConfigurationError(
                f"matmat expects a 2-D (3n, s) block, got shape {x.shape}")
        s = x.shape[1]
        kernel = spmm_kernel()
        if kernel is not None:
            indptr64, indices64 = self._spmm_arrays()
            xg = x.reshape(n, 3, s)
            y = np.empty((n, 3, s))
            if (context is not None and context.backend != "serial"
                    and context.workers > 1 and n > 1):
                self._parallel_matmat(context, indptr64, indices64, xg, y, s)
            else:
                kernel(n, indptr64, indices64, self.blocks, xg, y, s)
            return y.reshape(3 * n, s)
        if self._csr is None:
            self._csr = self.to_scipy()
        return np.asarray(self._csr @ x)

    def _parallel_matmat(self, context: "object", indptr64: np.ndarray,
                         indices64: np.ndarray, xg: np.ndarray,
                         y: np.ndarray, s: int) -> None:
        """Chunked SpMM over the context's workers (C kernel path)."""
        from ..parallel.partition import row_blocks  # deferred: cycle
        n = self.n_block_rows
        ranges = [(lo, hi) for lo, hi in row_blocks(n, context.workers)
                  if hi > lo]
        if context.backend == "processes":
            self._processes_matmat(context, indptr64, indices64, xg, y,
                                   ranges)
            return
        rng_kernel = spmm_range_kernel()
        blocks = self.blocks

        def make_task(lo: int, hi: int):
            def task() -> None:
                rng_kernel(lo, hi, indptr64, indices64, blocks, xg, y, s)
            return task

        context.run_tasks([make_task(lo, hi) for lo, hi in ranges],
                          stage="real_spmm")

    def _processes_matmat(self, context: "object", indptr64: np.ndarray,
                          indices64: np.ndarray, xg: np.ndarray,
                          y: np.ndarray,
                          ranges: list[tuple[int, int]]) -> None:
        """SpMM over shared-memory worker processes."""
        pool = context.proc_pool()
        if self._shm_prefix is None:
            self._shm_prefix = f"bcsr{next(_BCSR_SEQ)}-"
            prefix = self._shm_prefix
            self._shm_static = {
                "indptr": pool.share(prefix + "p", indptr64),
                "indices": pool.share(prefix + "i", indices64),
                "blocks": pool.share(prefix + "b", self.blocks),
            }
        prefix = self._shm_prefix
        x_tok = pool.share(prefix + "x", xg)
        y_tok = pool.output(prefix + "y", y.shape)
        per_worker: list[dict | None] = [None] * pool.n_workers
        for w, rng in enumerate(ranges):
            per_worker[w] = {"ranges": [rng]}
        pool.run("spmm", per_worker, x=x_tok, y=y_tok,
                 **self._shm_static)
        y[...] = pool.view(prefix + "y")
        context.record_dispatch(len(ranges), 0.0, "real_spmm")

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2 and x.shape[1] > 1:
            return self.matmat(x)
        return self.matvec(x)

    # ------------------------------------------------------------------
    # conversions and accounting
    # ------------------------------------------------------------------

    def to_scipy(self) -> sp.csr_matrix:
        """Export as a scalar ``scipy.sparse.csr_matrix`` (compiled SpMV)."""
        n = self.n_block_rows
        return sp.bsr_matrix(
            (self.blocks, self.indices, self.indptr),
            shape=(3 * n, 3 * n)).tocsr()

    def to_dense(self) -> np.ndarray:
        """Densify (small matrices / tests only)."""
        n = self.n_block_rows
        out = np.zeros((3 * n, 3 * n))
        rows = self._block_rows
        for e in range(self.indices.size):
            r, c = rows[e], self.indices[e]
            out[3 * r:3 * r + 3, 3 * c:3 * c + 3] += self.blocks[e]
        return out

    @property
    def nnz_blocks(self) -> int:
        """Number of stored 3x3 blocks."""
        return int(self.indices.size)

    @property
    def memory_bytes(self) -> int:
        """Bytes held by payload and index arrays (Fig. 7a accounting).

        Counts the row-id scatter array and, once the SpMM path has
        materialized them, the kernel's int64 index arrays (zero extra
        on LP64 platforms, where they alias the stored ``intp``
        arrays) — index overhead is real memory and is reported as
        such.
        """
        total = (self.blocks.nbytes + self.indices.nbytes
                 + self.indptr.nbytes + self._block_rows.nbytes)
        for extra, base in ((self._indptr64, self.indptr),
                            (self._indices64, self.indices)):
            if extra is not None and extra is not base and extra.base is not base:
                total += extra.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockCSR(n={self.n_block_rows}, nnz_blocks={self.nnz_blocks}, "
                f"{self.memory_bytes / 1e6:.1f} MB)")
