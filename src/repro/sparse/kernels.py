"""Runtime-compiled native kernels for the PME hot path.

``scipy.sparse``'s CSR ``matmat`` walks the right-hand-side *columns*
one at a time (``csr_matvecs``), so it amortizes nothing across the
``s`` vectors of a block — exactly the cost the paper's Section IV.C
("SpMV on blocks of vectors", reference [24]) eliminates.  This module
compiles, at import-on-demand time, a small C library with the four
entry points the parallel execution layer needs:

``bcsr_matmat`` / ``bcsr_matmat_range``
    Multi-RHS BCSR SpMM streaming each 3x3 block once against all
    ``s`` lanes.  Lane counts common in Algorithm 2 (1, 2, 4, 6, 8,
    12, 16) get fully specialized inner loops; the ``_range`` variant
    computes only block rows ``[lo, hi)`` so an execution context can
    chunk the product over workers (row results are independent, so
    any partition is bit-identical to the serial product).
``spread_idx``
    Scatter-add of a particle subset onto a batch-first ``(lanes,
    K^3)`` mesh (Section IV.B.2).  The subset is one mesh block of one
    color of the independent-set schedule: within a color, blocks
    write disjoint mesh points, so concurrent calls use *plain stores*
    — no atomics — exactly as the paper promises.
``interp_range``
    Gather (interpolation) of particle rows ``[lo, hi)`` from a
    batch-first mesh; pure reads plus disjoint writes, so row chunks
    parallelize trivially.

Every entry point is called through ``ctypes``, which releases the GIL
for the duration of the C call — this is what makes the ``threads``
backend of :mod:`repro.exec` genuinely parallel on CPython.

The kernels are strictly optional: compilation requires a C compiler
(``cc``/``gcc``/``clang``) on ``PATH``, and every failure — no
compiler, sandboxed temp dir, exotic platform — degrades silently to
the pure SciPy/NumPy paths.  The ``no_ckernel`` knob of
:class:`repro.config.RuntimeConfig` (``REPRO_NO_CKERNEL=1``) disables
them explicitly (useful to benchmark the fallback or rule the kernels
out when debugging).  Compiled libraries are cached on disk keyed by a
hash of the source and compiler flags (directory overridable via the
``ckernel_cache`` knob), so the cost is one ``cc`` invocation per
machine, not per process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
from numpy.ctypeslib import ndpointer

from ..config import get_config

__all__ = [
    "spmm_kernel", "spmm_range_kernel", "spread_kernel", "interp_kernel",
    "kernel_available", "reset_kernel_cache", "SPECIALIZED_LANES",
]

#: Lane counts with fully specialized (compile-time ``s``) inner loops.
SPECIALIZED_LANES = (1, 2, 4, 6, 8, 12, 16)

_SOURCE = r"""
#include <stddef.h>

#define DEFINE_SPMM(S)                                                   \
static void bcsr_matmat_##S(const long long lo, const long long hi,      \
                            const long long *restrict indptr,            \
                            const long long *restrict indices,           \
                            const double *restrict blocks,               \
                            const double *restrict x,                    \
                            double *restrict y)                          \
{                                                                        \
    for (long long r = lo; r < hi; ++r) {                                \
        double acc[3 * S];                                               \
        for (int c = 0; c < 3 * S; ++c) acc[c] = 0.0;                    \
        const long long k1 = indptr[r + 1];                              \
        for (long long k = indptr[r]; k < k1; ++k) {                     \
            const double *restrict b = blocks + 9 * (size_t)k;           \
            const double *restrict xc = x + (size_t)(3 * S) * indices[k];\
            for (int u = 0; u < 3; ++u)                                  \
                for (int v = 0; v < 3; ++v) {                            \
                    const double buv = b[3 * u + v];                     \
                    for (int j = 0; j < S; ++j)                          \
                        acc[S * u + j] += buv * xc[S * v + j];           \
                }                                                        \
        }                                                                \
        double *restrict yr = y + (size_t)(3 * S) * r;                   \
        for (int c = 0; c < 3 * S; ++c) yr[c] = acc[c];                  \
    }                                                                    \
}

DEFINE_SPMM(1)
DEFINE_SPMM(2)
DEFINE_SPMM(4)
DEFINE_SPMM(6)
DEFINE_SPMM(8)
DEFINE_SPMM(12)
DEFINE_SPMM(16)

void bcsr_matmat_range(const long long lo, const long long hi,
                       const long long *indptr, const long long *indices,
                       const double *blocks, const double *x, double *y,
                       const long long s)
{
    switch (s) {
    case 1:  bcsr_matmat_1(lo, hi, indptr, indices, blocks, x, y);  return;
    case 2:  bcsr_matmat_2(lo, hi, indptr, indices, blocks, x, y);  return;
    case 4:  bcsr_matmat_4(lo, hi, indptr, indices, blocks, x, y);  return;
    case 6:  bcsr_matmat_6(lo, hi, indptr, indices, blocks, x, y);  return;
    case 8:  bcsr_matmat_8(lo, hi, indptr, indices, blocks, x, y);  return;
    case 12: bcsr_matmat_12(lo, hi, indptr, indices, blocks, x, y); return;
    case 16: bcsr_matmat_16(lo, hi, indptr, indices, blocks, x, y); return;
    }
    for (long long r = lo; r < hi; ++r) {
        double *yr = y + (size_t)(3 * s) * r;
        for (long long c = 0; c < 3 * s; ++c) yr[c] = 0.0;
        for (long long k = indptr[r]; k < indptr[r + 1]; ++k) {
            const double *b = blocks + 9 * (size_t)k;
            const double *xc = x + (size_t)(3 * s) * indices[k];
            for (int u = 0; u < 3; ++u)
                for (int v = 0; v < 3; ++v) {
                    const double buv = b[3 * u + v];
                    for (long long j = 0; j < s; ++j)
                        yr[s * u + j] += buv * xc[s * v + j];
                }
        }
    }
}

void bcsr_matmat(const long long nb, const long long *indptr,
                 const long long *indices, const double *blocks,
                 const double *x, double *y, const long long s)
{
    bcsr_matmat_range(0, nb, indptr, indices, blocks, x, y, s);
}

/* Scatter-add a particle subset onto a batch-first (lanes, k3) mesh.
 * idx selects rows of the (n, pcube) weight/column tables; vals is the
 * (n, lanes) per-particle operand.  Accumulation order is (particle,
 * lane, element) with particles in idx order — matching the NumPy
 * fallback's np.add.at traversal, and identical for every partition of
 * a color into blocks because block footprints are disjoint. */
void spread_idx(const long long nidx, const long long *restrict idx,
                const double *restrict data, const long long *restrict cols,
                const long long pcube, const double *restrict vals,
                const long long lanes, double *restrict out,
                const long long k3)
{
    for (long long t = 0; t < nidx; ++t) {
        const long long i = idx[t];
        const double *restrict wi = data + (size_t)i * pcube;
        const long long *restrict ci = cols + (size_t)i * pcube;
        const double *restrict vi = vals + (size_t)i * lanes;
        for (long long b = 0; b < lanes; ++b) {
            const double v = vi[b];
            double *restrict ob = out + (size_t)b * k3;
            for (long long e = 0; e < pcube; ++e)
                ob[ci[e]] += wi[e] * v;
        }
    }
}

/* Gather (interpolate) particle rows [lo, hi) from a batch-first
 * (lanes, k3) mesh into a (lanes, n) output.  Row results are
 * independent, so any row partition is bit-identical. */
void interp_range(const long long lo, const long long hi,
                  const double *restrict data, const long long *restrict cols,
                  const long long pcube, const double *restrict mesh,
                  const long long k3, const long long lanes,
                  const long long n, double *restrict out)
{
    for (long long i = lo; i < hi; ++i) {
        const double *restrict wi = data + (size_t)i * pcube;
        const long long *restrict ci = cols + (size_t)i * pcube;
        for (long long b = 0; b < lanes; ++b) {
            const double *restrict mb = mesh + (size_t)b * k3;
            double acc = 0.0;
            for (long long e = 0; e < pcube; ++e)
                acc += wi[e] * mb[ci[e]];
            out[(size_t)b * n + i] = acc;
        }
    }
}
"""

_BASE_FLAGS = ["-O3", "-fPIC", "-shared"]

#: Memoized load result: unset / a _Kernels bundle / None (unavailable).
_UNSET = object()
_kernels: object = _UNSET


class _Kernels:
    """The four loaded entry points of one compiled library."""

    __slots__ = ("spmm", "spmm_range", "spread", "interp")

    def __init__(self, spmm: object, spmm_range: object, spread: object,
                 interp: object):
        self.spmm = spmm
        self.spmm_range = spmm_range
        self.spread = spread
        self.interp = interp


def _cache_dir() -> Path:
    """Directory caching compiled kernels (``ckernel_cache`` knob)."""
    override = get_config().ckernel_cache
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-ckernels"


def _compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile(compiler: str, flags: list[str], out: Path) -> bool:
    """Compile the kernel source to ``out``; True on success."""
    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "repro_kernels.c"
        src.write_text(_SOURCE, encoding="utf-8")
        obj = Path(tmp) / out.name
        try:
            result = subprocess.run(
                [compiler, *flags, str(src), "-o", str(obj)],
                capture_output=True, timeout=120, check=False)
        except (OSError, subprocess.SubprocessError):
            return False
        if result.returncode != 0 or not obj.exists():
            return False
        out.parent.mkdir(parents=True, exist_ok=True)
        # atomic-ish publish so concurrent processes never load a
        # half-written library
        partial = out.with_suffix(f".{os.getpid()}.tmp")
        shutil.copy2(obj, partial)
        os.replace(partial, out)
        return True


def _load(path: Path) -> _Kernels | None:
    try:
        lib = ctypes.CDLL(str(path))
        spmm = lib.bcsr_matmat
        spmm_range = lib.bcsr_matmat_range
        spread = lib.spread_idx
        interp = lib.interp_range
    except (OSError, AttributeError):
        return None
    i64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
    f64 = ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
    ll = ctypes.c_longlong
    spmm.argtypes = [ll, i64, i64, f64, f64, f64, ll]
    spmm.restype = None
    spmm_range.argtypes = [ll, ll, i64, i64, f64, f64, f64, ll]
    spmm_range.restype = None
    spread.argtypes = [ll, i64, f64, i64, ll, f64, ll, f64, ll]
    spread.restype = None
    interp.argtypes = [ll, ll, f64, i64, ll, f64, ll, ll, ll, f64]
    interp.restype = None
    return _Kernels(spmm, spmm_range, spread, interp)


def _selftest(kernels: _Kernels) -> bool:
    """Check every loaded entry point against tiny NumPy references."""
    rng = np.random.default_rng(7)

    # SpMM (full + range must agree with the dense product)
    indptr = np.array([0, 2, 3], dtype=np.int64)
    indices = np.array([0, 1, 1], dtype=np.int64)
    blocks = np.ascontiguousarray(rng.standard_normal((3, 3, 3)))
    x = np.ascontiguousarray(rng.standard_normal((2, 3, 2)))
    y = np.empty_like(x)
    kernels.spmm(2, indptr, indices, blocks, x, y, 2)
    dense = np.zeros((6, 6))
    dense[0:3, 0:3] = blocks[0]
    dense[0:3, 3:6] = blocks[1]
    dense[3:6, 3:6] = blocks[2]
    ref = (dense @ x.reshape(6, 2)).reshape(2, 3, 2)
    if not np.allclose(y, ref, rtol=1e-12, atol=1e-12):
        return False
    y2 = np.zeros_like(x)
    kernels.spmm_range(0, 1, indptr, indices, blocks, x, y2, 2)
    kernels.spmm_range(1, 2, indptr, indices, blocks, x, y2, 2)
    if not np.array_equal(y, y2):
        return False

    # spread: scatter-add must match np.add.at exactly
    n, pcube, k3, lanes = 3, 4, 8, 2
    data = np.ascontiguousarray(rng.standard_normal((n, pcube)))
    cols = np.ascontiguousarray(
        rng.integers(0, k3, size=(n, pcube)), dtype=np.int64)
    vals = np.ascontiguousarray(rng.standard_normal((n, lanes)))
    out = np.zeros((lanes, k3))
    idx = np.arange(n, dtype=np.int64)
    kernels.spread(n, idx, data, cols, pcube, vals, lanes, out, k3)
    expect = np.zeros((k3, lanes))
    np.add.at(expect, cols.ravel(),
              (data[:, :, None] * vals[:, None, :]).reshape(-1, lanes))
    if not np.allclose(out, expect.T, rtol=1e-12, atol=1e-12):
        return False

    # interpolate: gather must match the einsum reference
    mesh = np.ascontiguousarray(rng.standard_normal((lanes, k3)))
    got = np.zeros((lanes, n))
    kernels.interp(0, n, data, cols, pcube, mesh, k3, lanes, n, got)
    want = np.einsum("ie,bie->bi", data, mesh[:, cols])
    return bool(np.allclose(got, want, rtol=1e-12, atol=1e-12))


def _bundle() -> _Kernels | None:
    """Compile/load/memoize the kernel library (None when unavailable)."""
    global _kernels
    if _kernels is not _UNSET:
        return None if _kernels is None else _kernels  # type: ignore[return-value]
    if get_config().no_ckernel:
        _kernels = None
        return None
    compiler = _compiler()
    if compiler is None:
        _kernels = None
        return None
    for flags in ([*_BASE_FLAGS, "-march=native"], _BASE_FLAGS):
        tag = hashlib.sha256(
            (_SOURCE + compiler + " ".join(flags)).encode()).hexdigest()[:16]
        lib_path = _cache_dir() / f"repro-kernels-{tag}.so"
        if not lib_path.exists() and not _compile(compiler, flags, lib_path):
            continue
        kernels = _load(lib_path)
        if kernels is not None and _selftest(kernels):
            _kernels = kernels
            return kernels
    _kernels = None
    return None


def reset_kernel_cache() -> None:
    """Forget the memoized load result (test helper).

    The bundle is memoized for the process lifetime, so flipping
    ``REPRO_NO_CKERNEL`` at runtime has no effect until this is called;
    the backend-equivalence tests use it to exercise both paths in one
    process.  The on-disk compilation cache is untouched.
    """
    global _kernels
    _kernels = _UNSET


def spmm_kernel() -> object | None:
    """The compiled SpMM entry point, or ``None`` when unavailable.

    The returned callable has the C signature ``bcsr_matmat(nb, indptr,
    indices, blocks, x, y, s)`` with ``x``/``y`` row-major ``(nb, 3, s)``
    float64 arrays.  The result is memoized for the process lifetime.
    """
    kernels = _bundle()
    return None if kernels is None else kernels.spmm


def spmm_range_kernel() -> object | None:
    """Row-range SpMM ``bcsr_matmat_range(lo, hi, indptr, indices,
    blocks, x, y, s)`` — computes block rows ``[lo, hi)`` only."""
    kernels = _bundle()
    return None if kernels is None else kernels.spmm_range


def spread_kernel() -> object | None:
    """Colored scatter-add ``spread_idx(nidx, idx, data, cols, pcube,
    vals, lanes, out, k3)`` with ``out`` batch-first ``(lanes, k3)``."""
    kernels = _bundle()
    return None if kernels is None else kernels.spread


def interp_kernel() -> object | None:
    """Row-range gather ``interp_range(lo, hi, data, cols, pcube, mesh,
    k3, lanes, n, out)`` with ``out`` shaped ``(lanes, n)``."""
    kernels = _bundle()
    return None if kernels is None else kernels.interp


def kernel_available() -> bool:
    """True when the native kernels compiled and passed self-test."""
    return _bundle() is not None
