"""Runtime-compiled native BCSR SpMM kernel (multi-RHS real-space term).

``scipy.sparse``'s CSR ``matmat`` walks the right-hand-side *columns*
one at a time (``csr_matvecs``), so it amortizes nothing across the
``s`` vectors of a block — exactly the cost the paper's Section IV.C
("SpMV on blocks of vectors", reference [24]) eliminates.  This module
compiles, at import-on-demand time, a small C kernel that streams each
3x3 block once and multiplies it against all ``s`` lanes of the
operand while the block is in registers.  Lane counts common in
Algorithm 2 (1, 2, 4, 6, 8, 12, 16) get fully specialized inner loops
(compile-time trip counts vectorize; a generic fallback handles any
other ``s``).

The kernel is strictly optional: compilation requires a C compiler
(``cc``/``gcc``/``clang``) on ``PATH``, and every failure — no
compiler, sandboxed temp dir, exotic platform — degrades silently to
the pure SciPy/NumPy paths in :mod:`repro.sparse.bcsr`.  Setting
``REPRO_NO_CKERNEL=1`` disables it explicitly (useful to benchmark the
fallback or rule the kernel out when debugging).  Compiled libraries
are cached on disk keyed by a hash of the source and compiler flags,
so the cost is one ``cc`` invocation per machine, not per process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
from numpy.ctypeslib import ndpointer

__all__ = ["spmm_kernel", "kernel_available", "SPECIALIZED_LANES"]

#: Lane counts with fully specialized (compile-time ``s``) inner loops.
SPECIALIZED_LANES = (1, 2, 4, 6, 8, 12, 16)

_SOURCE = r"""
#include <stddef.h>

#define DEFINE_SPMM(S)                                                   \
static void bcsr_matmat_##S(const long long nb,                          \
                            const long long *restrict indptr,            \
                            const long long *restrict indices,           \
                            const double *restrict blocks,               \
                            const double *restrict x,                    \
                            double *restrict y)                          \
{                                                                        \
    for (long long r = 0; r < nb; ++r) {                                 \
        double acc[3 * S];                                               \
        for (int c = 0; c < 3 * S; ++c) acc[c] = 0.0;                    \
        const long long k1 = indptr[r + 1];                              \
        for (long long k = indptr[r]; k < k1; ++k) {                     \
            const double *restrict b = blocks + 9 * (size_t)k;           \
            const double *restrict xc = x + (size_t)(3 * S) * indices[k];\
            for (int u = 0; u < 3; ++u)                                  \
                for (int v = 0; v < 3; ++v) {                            \
                    const double buv = b[3 * u + v];                     \
                    for (int j = 0; j < S; ++j)                          \
                        acc[S * u + j] += buv * xc[S * v + j];           \
                }                                                        \
        }                                                                \
        double *restrict yr = y + (size_t)(3 * S) * r;                   \
        for (int c = 0; c < 3 * S; ++c) yr[c] = acc[c];                  \
    }                                                                    \
}

DEFINE_SPMM(1)
DEFINE_SPMM(2)
DEFINE_SPMM(4)
DEFINE_SPMM(6)
DEFINE_SPMM(8)
DEFINE_SPMM(12)
DEFINE_SPMM(16)

void bcsr_matmat(const long long nb, const long long *indptr,
                 const long long *indices, const double *blocks,
                 const double *x, double *y, const long long s)
{
    switch (s) {
    case 1:  bcsr_matmat_1(nb, indptr, indices, blocks, x, y);  return;
    case 2:  bcsr_matmat_2(nb, indptr, indices, blocks, x, y);  return;
    case 4:  bcsr_matmat_4(nb, indptr, indices, blocks, x, y);  return;
    case 6:  bcsr_matmat_6(nb, indptr, indices, blocks, x, y);  return;
    case 8:  bcsr_matmat_8(nb, indptr, indices, blocks, x, y);  return;
    case 12: bcsr_matmat_12(nb, indptr, indices, blocks, x, y); return;
    case 16: bcsr_matmat_16(nb, indptr, indices, blocks, x, y); return;
    }
    for (long long r = 0; r < nb; ++r) {
        double *yr = y + (size_t)(3 * s) * r;
        for (long long c = 0; c < 3 * s; ++c) yr[c] = 0.0;
        for (long long k = indptr[r]; k < indptr[r + 1]; ++k) {
            const double *b = blocks + 9 * (size_t)k;
            const double *xc = x + (size_t)(3 * s) * indices[k];
            for (int u = 0; u < 3; ++u)
                for (int v = 0; v < 3; ++v) {
                    const double buv = b[3 * u + v];
                    for (long long j = 0; j < s; ++j)
                        yr[s * u + j] += buv * xc[s * v + j];
                }
        }
    }
}
"""

_BASE_FLAGS = ["-O3", "-fPIC", "-shared"]

#: Memoized load result: unset / the ctypes function / None (unavailable).
_UNSET = object()
_kernel: object = _UNSET


def _cache_dir() -> Path:
    """Directory caching compiled kernels (override: REPRO_CKERNEL_CACHE)."""
    override = os.environ.get("REPRO_CKERNEL_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-ckernels"


def _compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile(compiler: str, flags: list[str], out: Path) -> bool:
    """Compile the kernel source to ``out``; True on success."""
    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "bcsr_spmm.c"
        src.write_text(_SOURCE, encoding="utf-8")
        obj = Path(tmp) / out.name
        try:
            result = subprocess.run(
                [compiler, *flags, str(src), "-o", str(obj)],
                capture_output=True, timeout=120, check=False)
        except (OSError, subprocess.SubprocessError):
            return False
        if result.returncode != 0 or not obj.exists():
            return False
        out.parent.mkdir(parents=True, exist_ok=True)
        # atomic-ish publish so concurrent processes never load a
        # half-written library
        partial = out.with_suffix(f".{os.getpid()}.tmp")
        shutil.copy2(obj, partial)
        os.replace(partial, out)
        return True


def _load(path: Path) -> object | None:
    try:
        lib = ctypes.CDLL(str(path))
        fn = lib.bcsr_matmat
    except OSError:
        return None
    i64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
    f64 = ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
    fn.argtypes = [ctypes.c_longlong, i64, i64, f64, f64, f64,
                   ctypes.c_longlong]
    fn.restype = None
    return fn


def _selftest(fn: object) -> bool:
    """Check the loaded kernel against a tiny dense reference."""
    indptr = np.array([0, 2, 3], dtype=np.int64)
    indices = np.array([0, 1, 1], dtype=np.int64)
    rng = np.random.default_rng(7)
    blocks = np.ascontiguousarray(rng.standard_normal((3, 3, 3)))
    x = np.ascontiguousarray(rng.standard_normal((2, 3, 2)))
    y = np.empty_like(x)
    fn(2, indptr, indices, blocks, x, y, 2)  # type: ignore[operator]
    dense = np.zeros((6, 6))
    dense[0:3, 0:3] = blocks[0]
    dense[0:3, 3:6] = blocks[1]
    dense[3:6, 3:6] = blocks[2]
    ref = (dense @ x.reshape(6, 2)).reshape(2, 3, 2)
    return bool(np.allclose(y, ref, rtol=1e-12, atol=1e-12))


def spmm_kernel() -> object | None:
    """The compiled SpMM entry point, or ``None`` when unavailable.

    The returned callable has the C signature ``bcsr_matmat(nb, indptr,
    indices, blocks, x, y, s)`` with ``x``/``y`` row-major ``(nb, 3, s)``
    float64 arrays.  The result is memoized for the process lifetime.
    """
    global _kernel
    if _kernel is not _UNSET:
        return None if _kernel is None else _kernel
    if os.environ.get("REPRO_NO_CKERNEL", "").strip() in ("1", "true", "yes"):
        _kernel = None
        return None
    compiler = _compiler()
    if compiler is None:
        _kernel = None
        return None
    for flags in ([*_BASE_FLAGS, "-march=native"], _BASE_FLAGS):
        tag = hashlib.sha256(
            (_SOURCE + compiler + " ".join(flags)).encode()).hexdigest()[:16]
        lib_path = _cache_dir() / f"bcsr_spmm-{tag}.so"
        if not lib_path.exists() and not _compile(compiler, flags, lib_path):
            continue
        fn = _load(lib_path)
        if fn is not None and _selftest(fn):
            _kernel = fn
            return fn
    _kernel = None
    return None


def kernel_available() -> bool:
    """True when the native SpMM kernel compiled and passed self-test."""
    return spmm_kernel() is not None
