"""Block-sparse linear algebra.

The real-space Ewald operator has natural 3x3 tensor blocks, so the
paper stores it in Block Compressed Sparse Row (BCSR) format and runs
SpMV on *blocks of vectors* (multiple right-hand sides), which is much
more bandwidth-efficient than repeated single-vector products
(Section IV.C, reference [24]).  :class:`~repro.sparse.bcsr.BlockCSR`
is the from-scratch implementation; it can also export a
``scipy.sparse`` CSR view used as a compiled-speed backend.
"""

from .bcsr import BlockCSR
from .kernels import kernel_available

__all__ = ["BlockCSR", "kernel_available"]
