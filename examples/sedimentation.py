"""Sedimenting cluster: collective hydrodynamics in action.

A compact cluster of spheres settles *faster* than an isolated sphere
under the same per-particle force, because each particle is dragged
along by the flow fields of its neighbors — the canonical demonstration
that hydrodynamic interactions change collective dynamics qualitatively
(the motivation of the paper's introduction).

The script drops (a) a single sphere and (b) a 64-particle cluster in
a large periodic box, pulls both with the same body force at nearly
zero temperature, and compares settling speeds.  Expected: the cluster
settles several times faster, approaching the Stokes velocity of an
equivalent large sphere.

Run:  python examples/sedimentation.py
"""

import numpy as np

from repro import Box, ConstantForce, FluidParams, MatrixFreeBD, Suspension
from repro.pme import PMEParams
from repro.systems.lattice import fcc_positions


def settle_speed(positions, box, n_steps=10, dt=5e-4):
    """Mean settling speed under a unit -z force per particle."""
    fluid = FluidParams(kT=1e-18)           # effectively deterministic
    bd = MatrixFreeBD(
        box=box, fluid=fluid,
        force_field=ConstantForce(np.array([0.0, 0.0, -1.0])),
        dt=dt, lambda_rpy=n_steps, seed=0,
        pme_params=PMEParams(xi=0.5, r_max=8.0, K=64, p=6))
    final, _ = bd.run(positions, n_steps)
    dz = final[:, 2] - np.asarray(positions)[:, 2]
    return float(-dz.mean() / (n_steps * dt))


def main():
    box = Box(80.0)    # large box: periodic image effects are mild

    single = np.array([[40.0, 40.0, 40.0]])
    v_single = settle_speed(single, box)

    # a compact FCC cluster of 64 touching-ish spheres around the center
    cluster = fcc_positions(64, 10.2) + 35.0
    susp = Suspension(cluster, box, FluidParams())
    print(f"cluster: {susp.n} particles, min separation "
          f"{susp.min_separation():.2f}a, radius ~{10.2 / 2 * 1.7:.0f}a")
    v_cluster = settle_speed(cluster, box)

    print(f"single sphere settling speed : {v_single:.3f} (Stokes ~ mu0 F"
          " = 1 minus periodic correction)")
    print(f"64-sphere cluster speed      : {v_cluster:.3f}")
    print(f"collective enhancement       : {v_cluster / v_single:.2f}x")
    print("\nWith hydrodynamic interactions the cluster falls much faster "
          "than an isolated\nsphere — neglect HI and both would settle at "
          "identical speeds.")


if __name__ == "__main__":
    main()
