"""Hybrid CPU + coprocessor scheduling walk-through (paper Section IV.E).

Shows how the library plans a matrix-free BD step across a CPU and two
Xeon Phi cards: the performance model predicts each phase, the Ewald
parameter is tuned to balance real-space (CPU) against reciprocal-space
(accelerator) work, and a block of Krylov vectors is statically
partitioned across all three devices.  The schedule is then *executed*
on the host and verified to give the same velocities as the plain
operator.

Run:  python examples/hybrid_scheduling.py
"""

import numpy as np

from repro import HybridScheduler, PMEOperator, make_suspension, tune_parameters
from repro.perfmodel import PMECostModel, WESTMERE_EP, XEON_PHI_KNC


def main():
    n = 400
    susp = make_suspension(n, 0.2, seed=0)
    params = tune_parameters(n, susp.box, target_ep=1e-3)
    print(f"tuned PME parameters: K={params.K}, p={params.p}, "
          f"r_max={params.r_max:.2f}, alpha={params.xi:.3f}")

    # per-phase predictions on both machine models
    for machine in (WESTMERE_EP, XEON_PHI_KNC):
        model = PMECostModel(machine)
        breakdown = model.breakdown(n, params.K, params.p)
        phases = ", ".join(f"{k}={v * 1e3:.2f}ms"
                           for k, v in breakdown.items())
        print(f"  {machine.name}: {phases}")

    scheduler = HybridScheduler()

    # alpha tuning: pick the cutoff balancing CPU real-space work with
    # one coprocessor reciprocal evaluation (Section IV.E)
    balanced_r = scheduler.balance_alpha_cutoff(
        n, susp.box.volume, params.K, params.p,
        r_max_grid=np.linspace(2.5, susp.box.length / 2, 16))
    print(f"\nload-balancing cutoff r_max = {balanced_r:.2f}a "
          "(larger cutoff -> more work on the CPU)")

    # static partition of a block of 16 Krylov vectors
    density = n * (4 / 3) * np.pi * params.r_max ** 3 / susp.box.volume
    plan = scheduler.plan_block(n, params.K, params.p, density, 16)
    for name, count, t in zip(plan.device_names, plan.assignments,
                              plan.device_times):
        print(f"  {name}: {count} vectors, busy {t * 1e3:.2f} ms")
    print(f"predicted hybrid speedup over CPU-only: {plan.speedup:.2f}x")

    # execute the schedule for real and verify
    op = PMEOperator(susp.positions, susp.box, params)
    f = np.random.default_rng(1).standard_normal((3 * n, 16))
    u_hybrid, plan = scheduler.execute(op, f)
    u_direct = op.apply(f)
    err = np.abs(u_hybrid - u_direct).max()
    print(f"\nhybrid execution matches the plain operator to {err:.2e} "
          "(bit-level reshuffling only)")


if __name__ == "__main__":
    main()
