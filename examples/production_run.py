"""Production-run workflow: monitors, checkpoints, saved trajectories.

The pattern a long study (like the paper's 500,000-step Fig. 3 runs)
actually needs, end to end:

1. run matrix-free BD with run-time monitors (MSD, overlap watchdog,
   potential energy),
2. write block-aligned checkpoints so the run can resume bit-exactly
   after an interruption,
3. persist the trajectory and re-load it for analysis,
4. solve a resistance problem on the final configuration (the forces
   needed to hold every particle still against a moving neighbor).

Run:  python examples/production_run.py
"""

import pathlib
import tempfile

import numpy as np

from repro import (
    EnergyMonitor,
    MinSeparationMonitor,
    MSDMonitor,
    RepulsiveHarmonic,
    Simulation,
    compose,
    diffusion_coefficient,
    make_suspension,
)
from repro.core.checkpoint import checkpoint_callback, resume
from repro.core.integrators import MatrixFreeBD
from repro.core.trajectory_io import load_trajectory, save_trajectory
from repro.krylov import solve_resistance


def main():
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_run_"))
    susp = make_suspension(n=200, volume_fraction=0.25, seed=8)
    forces = RepulsiveHarmonic(susp.box, susp.fluid)
    lambda_rpy = 8

    # --- 1. simulate with monitors and checkpoints -------------------
    bd = MatrixFreeBD(box=susp.box, fluid=susp.fluid, force_field=forces,
                      dt=1e-3, lambda_rpy=lambda_rpy, seed=3,
                      target_ep=1e-3, e_k=1e-2)
    msd = MSDMonitor(reference=susp.positions, interval=4)
    watchdog = MinSeparationMonitor(susp.box, interval=8)
    energy = EnergyMonitor(forces, interval=8)
    ckpt = workdir / "run.ckpt.npz"
    frames, times = [susp.positions.copy()], [0.0]

    def record(step, wrapped, unwrapped):
        if step % 4 == 0:
            frames.append(unwrapped.copy())
            times.append(step * 1e-3)

    bd.run(susp.positions, 48,
           callback=compose(msd, watchdog, energy, record,
                            checkpoint_callback(ckpt, bd, 2 * lambda_rpy)))
    print(f"48 steps done; min separation seen: {min(watchdog.values):.3f}a,"
          f" peak contact energy: {max(energy.values):.2f} kT")

    # --- 2. resume from the checkpoint (continues the same stream) ---
    final, _ = resume(ckpt, bd, 16,
                      callback=lambda s, w, u: record(s, w, u))
    print(f"resumed from step 48 checkpoint and ran to step 64")

    # --- 3. persist and re-load the trajectory -----------------------
    from repro import FluidParams, Trajectory
    traj = Trajectory(np.array(times), np.array(frames),
                      susp.box.length, susp.fluid)
    traj_file = workdir / "trajectory.npz"
    save_trajectory(traj_file, traj)
    loaded = load_trajectory(traj_file)
    d = diffusion_coefficient(loaded, lag_frames=1)
    print(f"trajectory saved/loaded ({loaded.n_frames} frames); "
          f"D(tau->0) = {d:.3f} D0")

    # --- 4. a resistance problem on the final configuration ----------
    op = bd.operator
    u = np.zeros(3 * susp.n)
    u[0] = 1.0    # particle 0 pulled at unit velocity, the rest held
    f_hold, info = solve_resistance(op.apply, u, tol=1e-8)
    print(f"holding the suspension still against one moving particle "
          f"needs |f| up to {np.abs(f_hold).max():.2f} "
          f"({info.n_matvecs} PME applications)")
    print(f"\nartifacts in {workdir}")


if __name__ == "__main__":
    main()
