"""Quickstart: hydrodynamic Brownian dynamics in ~20 lines.

Builds a 300-particle suspension at volume fraction 0.2, runs the
paper's matrix-free BD algorithm (PME mobility + block Krylov Brownian
displacements), and measures the short-time diffusion coefficient,
comparing it with the periodic-box theory.

Run:  python examples/quickstart.py
"""

from repro import (
    Simulation,
    diffusion_coefficient,
    finite_size_correction,
    make_suspension,
)


def main():
    # 1. a monodisperse suspension (box sized for the volume fraction)
    susp = make_suspension(n=300, volume_fraction=0.2, seed=0)
    print(f"system: n={susp.n}, Phi={susp.volume_fraction:.2f}, "
          f"L={susp.box.length:.2f}a, min separation "
          f"{susp.min_separation():.2f}a")

    # 2. matrix-free BD (Algorithm 2 of the paper): PME parameters are
    #    auto-tuned for the target accuracy e_p, Krylov tolerance e_k
    sim = Simulation(susp, algorithm="matrix-free", dt=1e-3,
                     lambda_rpy=16, seed=1, target_ep=1e-3, e_k=1e-2)

    # 3. propagate and record
    traj, stats = sim.run(n_steps=160, record_interval=1)
    print(f"ran {stats.n_steps} steps "
          f"({stats.seconds_per_step * 1e3:.1f} ms/step, "
          f"{stats.mobility_updates} mobility updates, "
          f"Krylov iterations per update: {stats.krylov_iterations})")

    # 4. analyze: short-time diffusion vs the RPY periodic-box theory
    d_measured = diffusion_coefficient(traj, lag_frames=1)
    d_theory = finite_size_correction(1.0 / susp.box.length)
    print(f"D(tau->0) measured = {d_measured:.3f} D0, "
          f"theory = {d_theory:.3f} D0 "
          f"(deviation {abs(d_measured - d_theory) / d_theory:.1%})")


if __name__ == "__main__":
    main()
