"""Polymer diffusion with hydrodynamics: Zimm vs Rouse scaling.

Without hydrodynamic interactions (Rouse model) the diffusion
coefficient of a polymer's center of mass is the sum of independent
bead mobilities, ``D_cm = D_0 / N``.  With hydrodynamics (Zimm model)
the beads drag each other along, and ``D_cm ~ D_0 / R_h`` decays much
more slowly with chain length — one of the classic qualitative effects
the paper's hydrodynamic BD captures and free-draining BD misses.

The script grows self-avoiding bead-spring chains of several lengths,
runs matrix-free BD with bonded forces, and reports the center-of-mass
diffusion coefficient against the Rouse prediction.

Run:  python examples/polymer_zimm.py
"""

import numpy as np

from repro import Box, CompositeForce, HarmonicBonds, MatrixFreeBD, RepulsiveHarmonic
from repro.systems import bead_spring_chain

BOND_LENGTH = 2.5
DT = 2e-4


def com_diffusion(n_beads, n_steps=240, seed=0):
    """Center-of-mass diffusion coefficient of one chain."""
    box = Box(max(40.0, 6.0 * BOND_LENGTH * n_beads ** 0.6))
    chain, bonds = bead_spring_chain(n_beads, BOND_LENGTH, box, seed=seed)
    forces = CompositeForce(
        HarmonicBonds(box, bonds, stiffness=100.0, rest_length=BOND_LENGTH),
        RepulsiveHarmonic(box),
    )
    bd = MatrixFreeBD(box=box, force_field=forces, dt=DT, lambda_rpy=20,
                      seed=seed + 1, target_ep=1e-2, e_k=1e-2)
    com_track = []
    bd.run(chain.positions, n_steps,
           callback=lambda s, w, u: com_track.append(u.mean(axis=0)))
    com = np.array(com_track)
    # D from the MSD of the COM over a modest lag
    lag = 40
    diffs = com[lag:] - com[:-lag]
    msd = (diffs ** 2).sum(axis=1).mean()
    return msd / (6.0 * lag * DT)


def main():
    print(f"{'N beads':>8} {'D_cm/D0':>9} {'Rouse 1/N':>10} "
          f"{'enhancement':>12}")
    for n_beads in (4, 8, 16):
        d = com_diffusion(n_beads)
        rouse = 1.0 / n_beads
        print(f"{n_beads:>8} {d:>9.3f} {rouse:>10.3f} {d / rouse:>11.2f}x")
    print("\nWith hydrodynamic interactions the chain diffuses faster than "
          "the free-draining\n(Rouse) prediction, and the enhancement grows "
          "with chain length — Zimm behaviour.")


if __name__ == "__main__":
    main()
