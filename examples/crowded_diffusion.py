"""Crowded-suspension diffusion study (a miniature of the paper's Fig. 3).

Sweeps the volume fraction of a monodisperse suspension, measures the
diffusion coefficient at zero lag (which the RPY model predicts to be
independent of crowding) and at finite lag (where caging and
hydrodynamic correlations suppress it), and prints the comparison with
theory.  Also reports the pair correlation function's contact value as
a structural cross-check.

Run:  python examples/crowded_diffusion.py
"""

import numpy as np

from repro import (
    Simulation,
    diffusion_coefficient,
    finite_size_correction,
    make_suspension,
    radial_distribution,
    short_time_self_diffusion,
)

N = 200
DT = 1e-3
STEPS = 150
LAG = 40


def main():
    print(f"{'Phi':>5} {'D(0) meas':>10} {'D(0) RPY':>9} "
          f"{'D(lag) meas':>12} {'virial ref':>11} {'g(2a+)':>7}")
    for phi in (0.05, 0.15, 0.25, 0.35, 0.45):
        susp = make_suspension(N, phi, seed=4)
        sim = Simulation(susp, dt=DT, lambda_rpy=16, seed=5,
                         target_ep=1e-3, e_k=1e-2)
        traj, _ = sim.run(n_steps=STEPS, record_interval=1)
        d0 = diffusion_coefficient(traj, lag_frames=1)
        dlag = diffusion_coefficient(traj, lag_frames=LAG)
        fs = finite_size_correction(1.0 / susp.box.length)
        virial = short_time_self_diffusion(phi) * fs

        # structure: contact value of g(r) from the final configuration
        final = susp.box.wrap(traj.positions[-1])
        r_max = min(4.0, susp.box.length / 2 * 0.99)
        centers, g = radial_distribution(final, susp.box, r_max=r_max,
                                         n_bins=30)
        near_contact = g[(centers >= 2.0) & (centers <= 2.4)]
        g_contact = float(near_contact.max()) if near_contact.size else 0.0

        print(f"{phi:>5.2f} {d0:>10.3f} {fs:>9.3f} {dlag:>12.3f} "
              f"{virial:>11.3f} {g_contact:>7.2f}")

    print("\nzero-lag D tracks the crowding-independent RPY theory; "
          "finite-lag D falls\nwith volume fraction; the contact peak of "
          "g(r) grows with crowding.")


if __name__ == "__main__":
    main()
